//! Metrics registry: monotonic counters, gauges, summaries, and
//! log-linear histograms, with a Prometheus-style text exposition dump.
//!
//! The registry is the *aggregate* side of the telemetry layer — where
//! the trace sinks record every event, the registry records totals and
//! distributions, and [`Registry::prometheus`] renders them in the text
//! exposition format scrape endpoints serve. Everything is plain `Vec`s
//! in insertion order: the dump is byte-deterministic for a fixed
//! sequence of updates.

use std::fmt::Write as _;

/// A log-linear histogram: `buckets` upper bounds growing geometrically
/// from `first_bound` by `growth` per bucket, plus the implicit `+Inf`
/// bucket — constant memory for any sample range, with relative error
/// bounded by the growth factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts[i]` tallies samples `<= bounds[i]`; the last entry is the
    /// overflow (`+Inf`) bucket.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
    /// Samples ignored for being NaN (a histogram of times must absorb a
    /// corrupted stamp, not poison the sum).
    nonfinite: u64,
}

impl Histogram {
    /// A histogram with `buckets` log-spaced bounds starting at
    /// `first_bound` and growing by `growth` per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `first_bound` or `growth` is not finite and positive,
    /// if `growth <= 1`, or if `buckets` is zero.
    #[must_use]
    pub fn log_linear(first_bound: f64, growth: f64, buckets: usize) -> Self {
        assert!(
            first_bound.is_finite() && first_bound > 0.0,
            "first bound must be positive"
        );
        assert!(growth.is_finite() && growth > 1.0, "growth must exceed 1");
        assert!(buckets > 0, "need at least one bucket");
        let mut bounds = Vec::with_capacity(buckets);
        let mut b = first_bound;
        for _ in 0..buckets {
            bounds.push(b);
            b *= growth;
        }
        let counts = vec![0; buckets + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            total: 0,
            nonfinite: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            self.nonfinite += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        if v.is_finite() {
            self.sum += v;
        }
    }

    /// Total samples recorded (excluding NaN).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all finite samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// NaN samples absorbed.
    #[must_use]
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// The `(upper_bound, cumulative_count)` rows of the exposition,
    /// ending with the `+Inf` bucket.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0;
        let mut rows = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            rows.push((bound, acc));
        }
        rows
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    Counter(f64),
    Gauge(f64),
    Histogram(Histogram),
    /// Pre-computed quantiles, rendered with Prometheus `quantile`
    /// labels (the summary exposition type).
    Summary(Vec<(&'static str, f64)>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Summary(_) => "summary",
        }
    }
}

/// A named collection of metrics, rendered via
/// [`prometheus`](Self::prometheus).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// `(name, help, metric)` in registration order.
    metrics: Vec<(String, String, Metric)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&mut self, name: &str, help: &str) -> usize {
        match self.metrics.iter().position(|(n, _, _)| n == name) {
            Some(i) => i,
            None => {
                self.metrics
                    .push((name.to_owned(), help.to_owned(), Metric::Counter(0.0)));
                self.metrics.len() - 1
            }
        }
    }

    /// Adds `v` to the monotonic counter `name` (registering it first if
    /// needed). Negative or non-finite increments are ignored —
    /// counters only go up.
    pub fn counter_add(&mut self, name: &str, help: &str, v: f64) {
        let i = self.slot(name, help);
        if let Metric::Counter(total) = &mut self.metrics[i].2 {
            if v.is_finite() && v >= 0.0 {
                *total += v;
            }
        }
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, help: &str, v: f64) {
        let i = self.slot(name, help);
        self.metrics[i].2 = Metric::Gauge(v);
    }

    /// Records `v` into the histogram `name`, creating it with the given
    /// shape on first use.
    pub fn observe(&mut self, name: &str, help: &str, shape: &Histogram, v: f64) {
        let i = self.slot(name, help);
        if !matches!(self.metrics[i].2, Metric::Histogram(_)) {
            self.metrics[i].2 = Metric::Histogram(shape.clone());
        }
        if let Metric::Histogram(h) = &mut self.metrics[i].2 {
            h.observe(v);
        }
    }

    /// Registers pre-computed quantiles as a summary metric.
    pub fn summary(&mut self, name: &str, help: &str, quantiles: Vec<(&'static str, f64)>) {
        let i = self.slot(name, help);
        self.metrics[i].2 = Metric::Summary(quantiles);
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` headers, then one line per sample, in
    /// registration order. Help text and label values carry the format's
    /// escaping (`\\`, `\n`, and `\"` in label values), so hostile
    /// strings cannot break a line or smuggle in an extra label.
    #[must_use]
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, metric) in &self.metrics {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(out, "# TYPE {name} {}", metric.type_name());
            match metric {
                Metric::Counter(v) | Metric::Gauge(v) => {
                    let _ = writeln!(out, "{name} {}", fmt_value(*v));
                }
                Metric::Summary(quantiles) => {
                    for (q, v) in quantiles {
                        let _ = writeln!(
                            out,
                            "{name}{{quantile=\"{}\"}} {}",
                            escape_label_value(q),
                            fmt_value(*v)
                        );
                    }
                }
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        let le = if bound.is_finite() {
                            fmt_value(bound)
                        } else {
                            "+Inf".to_owned()
                        };
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                    }
                    let _ = writeln!(out, "{name}_sum {}", fmt_value(h.sum()));
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Registers raw samples as a summary metric with nearest-rank
    /// p50/p95/p99 quantiles — the one-call path from a vector of
    /// latencies to an exposition-ready summary. Non-finite samples are
    /// excluded; an all-empty input registers an empty summary.
    pub fn summary_of(&mut self, name: &str, help: &str, samples: &[f64]) {
        let mut finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        let quantiles = if finite.is_empty() {
            Vec::new()
        } else {
            let at = |p: f64| {
                let rank = (p * finite.len() as f64).ceil() as usize;
                finite[rank.clamp(1, finite.len()) - 1]
            };
            vec![("0.5", at(0.50)), ("0.95", at(0.95)), ("0.99", at(0.99))]
        };
        self.summary(name, help, quantiles);
    }
}

/// 0.0.4 `# HELP` escaping: backslash and line feed only (double quotes
/// are legal in help text).
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// 0.0.4 label-value escaping: backslash, double quote, and line feed.
fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic value formatting: integers print bare, everything else
/// with full round-trip precision via Rust's shortest-representation
/// float formatter (stable across runs and platforms).
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let mut r = Registry::new();
        r.counter_add("requests_total", "Requests offered.", 3.0);
        r.counter_add("requests_total", "Requests offered.", 2.0);
        r.counter_add("requests_total", "Requests offered.", -5.0); // ignored
        r.counter_add("requests_total", "Requests offered.", f64::NAN); // ignored
        let text = r.prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("\nrequests_total 5\n"));
    }

    #[test]
    fn histogram_buckets_grow_geometrically_and_accumulate() {
        let mut h = Histogram::log_linear(1.0, 2.0, 4); // bounds 1,2,4,8
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let rows = h.cumulative_buckets();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], (1.0, 1));
        assert_eq!(rows[1], (2.0, 2));
        assert_eq!(rows[2], (4.0, 3));
        assert_eq!(rows[3], (8.0, 3));
        assert_eq!(rows[4].1, 4); // +Inf
        assert!(rows[4].0.is_infinite());
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 105.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_absorbs_nan_and_counts_infinite_in_overflow() {
        let mut h = Histogram::log_linear(1.0, 10.0, 2);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.nonfinite(), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.cumulative_buckets()[2].1, 1);
        assert_eq!(h.sum(), 0.0, "infinite samples do not poison the sum");
    }

    #[test]
    fn exposition_covers_all_four_types() {
        let mut r = Registry::new();
        r.counter_add("a_total", "A.", 1.0);
        r.gauge_set("b", "B.", 0.25);
        let shape = Histogram::log_linear(0.1, 10.0, 3);
        r.observe("c_ms", "C.", &shape, 0.05);
        r.observe("c_ms", "C.", &shape, 50.0);
        r.summary("d_ms", "D.", vec![("0.5", 10.0), ("0.99", 42.5)]);
        let text = r.prometheus();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("# TYPE b gauge"));
        assert!(text.contains("\nb 0.25\n"));
        assert!(text.contains("# TYPE c_ms histogram"));
        assert!(text.contains("c_ms_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("c_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("c_ms_count 2"));
        assert!(text.contains("# TYPE d_ms summary"));
        assert!(text.contains("d_ms{quantile=\"0.99\"} 42.5"));
    }

    /// 0.0.4 conformance over hostile help text and label values: every
    /// metric still renders as exactly one HELP line, one TYPE line, and
    /// one sample line — newlines, backslashes, and quotes in the inputs
    /// arrive escaped instead of splitting lines or closing the label
    /// quote early.
    #[test]
    fn exposition_escapes_hostile_help_and_label_values() {
        let mut r = Registry::new();
        r.counter_add("evil_total", "line one\nline two \\ \"quoted\"", 1.0);
        r.summary(
            "evil_ms",
            "Quantiles.",
            vec![("0.5\"},evil{x=\"", 1.0), ("p\\n", 2.0)],
        );
        let text = r.prometheus();
        assert!(text.contains("# HELP evil_total line one\\nline two \\\\ \"quoted\"\n"));
        assert!(text.contains("evil_ms{quantile=\"0.5\\\"},evil{x=\\\"\"} 1\n"));
        assert!(text.contains("evil_ms{quantile=\"p\\\\n\"} 2\n"));
        // No raw newline escaped the HELP line: every line is a comment,
        // a sample, or empty — a sample line never starts with a space.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("evil_"),
                "unexpected exposition line {line:?}"
            );
        }
    }

    #[test]
    fn summary_of_computes_nearest_rank_quantiles() {
        let mut r = Registry::new();
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        r.summary_of("lat_ms", "Latency.", &samples);
        let text = r.prometheus();
        assert!(text.contains("lat_ms{quantile=\"0.5\"} 50\n"));
        assert!(text.contains("lat_ms{quantile=\"0.95\"} 95\n"));
        assert!(text.contains("lat_ms{quantile=\"0.99\"} 99\n"));
        // NaN-laced and empty inputs stay panic-free.
        r.summary_of("nan_ms", "NaN.", &[f64::NAN, 3.0]);
        r.summary_of("empty_ms", "Empty.", &[]);
        let text = r.prometheus();
        assert!(text.contains("nan_ms{quantile=\"0.99\"} 3\n"));
        assert!(text.contains("# TYPE empty_ms summary\n"));
    }

    #[test]
    fn exposition_is_deterministic_and_ordered() {
        let build = || {
            let mut r = Registry::new();
            r.gauge_set("z", "Z.", 1.0);
            r.counter_add("a", "A.", 2.0);
            r.gauge_set("z", "Z.", 3.0);
            r.prometheus()
        };
        let a = build();
        assert_eq!(a, build());
        // Registration order, not alphabetical.
        assert!(a.find("# HELP z").unwrap() < a.find("# HELP a").unwrap());
    }
}
