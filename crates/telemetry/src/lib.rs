//! `flat-telemetry` — the unified observability layer of the FLAT stack:
//! virtual-clock-aware spans, monotonic counters, log-linear histograms,
//! a Chrome trace-event / Perfetto-compatible JSON exporter, and a
//! Prometheus-style text exposition dump.
//!
//! The rest of the workspace measures *where time and bytes go* — SG
//! residency, off-chip round trips, fabric collectives — but before this
//! crate each layer kept its own dead-end format: `flat-kernels` had a
//! bare stats struct, `flat-serve` one end-of-run JSON blob, `flat sim`
//! an ad-hoc trace writer, and `flat-dist` collectives were invisible at
//! runtime. Everything now records through one [`TraceSink`]:
//!
//! * [`Event`] / [`EventPhase`] — the Chrome trace-event subset the
//!   exporters write (`ph: B/E/X/C/i/M`, microsecond `ts`, `pid` = chip,
//!   `tid` = request or engine lane);
//! * [`TraceSink`] — the producer-facing trait, with three
//!   implementations: [`NoopSink`] (disabled, compiles away behind the
//!   [`TraceSink::enabled`] guard), [`MemorySink`] (buffering, for tests
//!   and post-processing), and [`JsonStreamSink`] (streams each event to
//!   an `io::Write` so long runs never hold their trace in memory);
//! * [`chrome_trace_json`] — the buffered exporter; the streaming sink
//!   produces byte-identical documents;
//! * [`Registry`] / [`Histogram`] — the aggregate side: counters,
//!   gauges, summaries, and log-linear histograms rendered as Prometheus
//!   text exposition by [`Registry::prometheus`].
//!
//! Timestamps are whatever clock the producer owns — the serving
//! engine's deterministic virtual clock, the simulator's cycle counter,
//! a search's candidate index. The layer adds no clock of its own, which
//! is what makes traces byte-reproducible for a fixed seed.
//!
//! # Example
//!
//! ```
//! use flat_telemetry::{Event, MemorySink, TraceSink};
//!
//! let mut sink = MemorySink::new();
//! if sink.enabled() {
//!     sink.record(Event::begin("prefill", "request", 0.0, 0, 7).arg("tokens", 128u64));
//!     sink.record(Event::end("prefill", "request", 950.0, 0, 7));
//! }
//! let json = sink.to_chrome_trace();
//! assert!(json.contains("\"ph\":\"B\""));
//! // Load the document in https://ui.perfetto.dev to see the span.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Same robustness contract as flat-serve/flat-dist: the observability
// layer must never be the thing that panics a run. CI gates this.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod event;
mod export;
mod registry;
mod sink;

pub use event::{ArgValue, Event, EventPhase};
pub use export::{chrome_trace_json, sort_events};
pub use registry::{Histogram, Registry};
pub use sink::{JsonStreamSink, MemorySink, NoopSink, TraceSink};
