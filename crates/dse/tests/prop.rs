//! Property tests for the design-space exploration.

use flat_arch::Accelerator;
use flat_dse::{la_points, pareto_frontier, Dse, Objective, SpaceKind};
use flat_tensor::Bytes;
use flat_workloads::Model;
use proptest::prelude::*;

fn accels() -> impl Strategy<Value = Accelerator> {
    (
        prop::sample::select(vec![16u64, 32, 64]),
        prop::sample::select(vec![128u64, 512, 4096]),
    )
        .prop_map(|(pe, sg)| {
            Accelerator::builder("prop")
                .pe(pe, pe)
                .sg(Bytes::from_kib(sg))
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Space nesting: the Full space's optimum dominates every restricted
    /// space's optimum, for every objective.
    #[test]
    fn full_space_dominates(accel in accels(), seq in prop::sample::select(vec![256u64, 512, 2048])) {
        let block = Model::bert().block(8, seq);
        let dse = Dse::new(&accel, &block);
        for objective in [Objective::MaxUtil, Objective::MinEnergy, Objective::MinEdp] {
            let full = objective.score(&dse.best_la(SpaceKind::Full, objective).report);
            for space in [SpaceKind::BaseOnly, SpaceKind::SequentialMGran, SpaceKind::Sequential] {
                let restricted = objective.score(&dse.best_la(space, objective).report);
                prop_assert!(
                    full >= restricted - 1e-9,
                    "{objective}: full {full} < {space:?} {restricted}"
                );
            }
        }
    }

    /// The Pareto frontier is a subset of the points, strictly increasing
    /// in both axes, and contains the global utilization maximum.
    #[test]
    fn pareto_laws(accel in accels(), seq in prop::sample::select(vec![256u64, 1024])) {
        let block = Model::t5_small().block(8, seq);
        let points = Dse::new(&accel, &block).explore_la(SpaceKind::Full);
        let frontier = pareto_frontier(&points);
        prop_assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            prop_assert!(w[0].report.footprint <= w[1].report.footprint);
            prop_assert!(w[0].report.util() < w[1].report.util());
        }
        let best = points.iter().map(|p| p.report.util()).fold(0.0, f64::max);
        prop_assert!((frontier.last().unwrap().report.util() - best).abs() < 1e-12);
    }

    /// Sampling never beats exhaustive search, and equals it when the
    /// sample covers the space.
    #[test]
    fn sampling_bounds(seed in any::<u64>(), samples in 1usize..40) {
        let accel = Accelerator::edge();
        let block = Model::bert().block(8, 256);
        let dse = Dse::new(&accel, &block);
        let full = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let sampled = dse.best_la_sampled(SpaceKind::Sequential, Objective::MaxUtil, samples, seed);
        prop_assert!(sampled.report.util() <= full.report.util() + 1e-12);
        let space_size = la_points(SpaceKind::Sequential, 256).len();
        let all = dse.best_la_sampled(SpaceKind::Sequential, Objective::MaxUtil, space_size, seed);
        prop_assert!((all.report.util() - full.report.util()).abs() < 1e-12);
    }

    /// Every enumerated point evaluates to a sane report.
    #[test]
    fn every_point_is_sane(accel in accels()) {
        let block = Model::bert().block(4, 256);
        for p in Dse::new(&accel, &block).explore_la(SpaceKind::Full) {
            prop_assert!(p.report.util() > 0.0 && p.report.util() <= 1.0);
            prop_assert!(p.report.cycles.is_finite());
            prop_assert!(p.report.traffic.offchip.as_u64() > 0);
        }
    }
}
