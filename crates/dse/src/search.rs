//! Exhaustive (parallel) search over the dataflow design space.

use crate::{la_points, others_points, Objective, SpaceKind};
use flat_core::{BlockCost, BlockDataflow, CostModel, CostReport, LaExecution, OperatorDataflow};
use flat_telemetry::{Event, TraceSink};
use flat_workloads::{AttentionBlock, OpCategory, Scope};
use serde::{Deserialize, Serialize};

/// One evaluated design point: a dataflow and its cost at the searched
/// scope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The L-A execution this point uses.
    pub la: LaExecution,
    /// Cost of the L-A pair under it.
    pub report: CostReport,
}

/// The search driver: a cost model plus a workload block.
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_dse::{Dse, Objective, SpaceKind};
/// use flat_workloads::Model;
///
/// let accel = Accelerator::edge();
/// let block = Model::bert().block(64, 512);
/// let dse = Dse::new(&accel, &block);
/// let base_opt = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
/// let flat_opt = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
/// // FLAT-opt searches a superset of Base-opt's space: it can never lose.
/// assert!(flat_opt.report.util() >= base_opt.report.util());
/// ```
#[derive(Debug)]
pub struct Dse<'a> {
    pub(crate) accel: &'a flat_arch::Accelerator,
    pub(crate) block: &'a AttentionBlock,
}

impl<'a> Dse<'a> {
    /// Creates a search driver for a block on an accelerator.
    #[must_use]
    pub fn new(accel: &'a flat_arch::Accelerator, block: &'a AttentionBlock) -> Self {
        Dse { accel, block }
    }

    /// Evaluates every L-A point in `space` (in parallel, on the shared
    /// pool) and returns them all — the raw material of the Figure 10
    /// design-space scatter.
    #[must_use]
    pub fn explore_la(&self, space: SpaceKind) -> Vec<DesignPoint> {
        use rayon::prelude::*;
        let points = la_points(space, self.block.config().seq_q);
        let cm = CostModel::new(self.accel);
        points
            .par_iter()
            .map(|&la| DesignPoint {
                la,
                report: cm.la_cost(self.block, &la),
            })
            .collect()
    }

    /// Best L-A point in `space` under `objective`.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty (it never is for the provided
    /// [`SpaceKind`]s).
    #[must_use]
    pub fn best_la(&self, space: SpaceKind, objective: Objective) -> DesignPoint {
        let points = la_points(space, self.block.config().seq_q);
        self.best_la_among(&points, objective)
    }

    /// Best L-A point among an explicit candidate list — a streaming
    /// parallel max-reduction that never materializes the priced space.
    /// Sweeps that price one space at many buffer sizes enumerate the
    /// candidates once and call this per grid point.
    ///
    /// The winner (ties included) is identical to pricing serially and
    /// taking `Iterator::max_by`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    #[must_use]
    pub fn best_la_among(&self, points: &[LaExecution], objective: Objective) -> DesignPoint {
        use rayon::prelude::*;
        let cm = CostModel::new(self.accel);
        points
            .par_iter()
            .map(|&la| DesignPoint {
                la,
                report: cm.la_cost(self.block, &la),
            })
            .max_by(|a, b| {
                objective
                    .score(&a.report)
                    .partial_cmp(&objective.score(&b.report))
                    .expect("scores are finite")
            })
            .expect("design space is never empty")
    }

    /// [`explore_la`](Self::explore_la) with search-progress tracing:
    /// candidates are still priced in parallel on the shared pool, then
    /// the events are *replayed* serially in candidate-enumeration order
    /// with the candidate index as the timestamp — so the trace is
    /// byte-deterministic no matter how the pool interleaved the work.
    ///
    /// Per candidate: an `evaluate` span (utilization + scratchpad
    /// footprint); a `pruned` instant when the footprint exceeds the
    /// accelerator's scratchpad (the point could never be configured); an
    /// `incumbent` instant whenever `objective`'s score strictly
    /// improves; and one closing counter with the evaluated/pruned
    /// totals.
    #[must_use]
    pub fn explore_la_traced(
        &self,
        space: SpaceKind,
        objective: Objective,
        sink: &mut dyn TraceSink,
    ) -> Vec<DesignPoint> {
        let points = self.explore_la(space);
        self.replay_search(&points, objective, sink);
        points
    }

    /// [`best_la`](Self::best_la) with search-progress tracing (see
    /// [`explore_la_traced`](Self::explore_la_traced)); the winner is
    /// identical to the untraced search, ties and all.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty (it never is for the provided
    /// [`SpaceKind`]s).
    #[must_use]
    pub fn best_la_traced(
        &self,
        space: SpaceKind,
        objective: Objective,
        sink: &mut dyn TraceSink,
    ) -> DesignPoint {
        let points = self.explore_la(space);
        let best = self.replay_search(&points, objective, sink);
        points[best.expect("design space is never empty")]
    }

    /// Serial, deterministic replay of an evaluated candidate list into
    /// the sink; returns the winning index under `objective` (the last
    /// of any ties — exactly [`Iterator::max_by`]'s choice, so traced
    /// and untraced searches agree).
    fn replay_search(
        &self,
        points: &[DesignPoint],
        objective: Objective,
        sink: &mut dyn TraceSink,
    ) -> Option<usize> {
        let enabled = sink.enabled();
        if enabled {
            sink.record(Event::process_name(0, "flat-dse search"));
            sink.record(Event::thread_name(0, 0, "candidates"));
        }
        let sg = self.accel.sg.as_u64();
        let mut best: Option<(usize, f64)> = None;
        let mut pruned_total = 0u64;
        for (i, p) in points.iter().enumerate() {
            let ts = i as f64;
            let footprint = p.report.footprint.as_u64();
            let pruned = footprint > sg;
            if pruned {
                pruned_total += 1;
            }
            let score = objective.score(&p.report);
            let improved = best.is_none_or(|(_, s)| score > s);
            if best.is_none_or(|(_, s)| score >= s) {
                best = Some((i, score));
            }
            if enabled {
                sink.record(
                    Event::complete("evaluate", "dse", ts, 1.0, 0, 0)
                        .arg("util", p.report.util())
                        .arg("footprint_bytes", footprint),
                );
                if pruned {
                    sink.record(
                        Event::instant("pruned", "dse", ts, 0, 0).arg("footprint_bytes", footprint),
                    );
                }
                if improved {
                    sink.record(
                        Event::instant("incumbent", "dse", ts, 0, 0)
                            .arg("score", score)
                            .arg("util", p.report.util()),
                    );
                }
            }
        }
        if enabled {
            sink.record(
                Event::counter("dse_progress", "dse", points.len() as f64, 0, 0)
                    .arg("evaluated", points.len() as u64)
                    .arg("pruned", pruned_total),
            );
        }
        best.map(|(i, _)| i)
    }

    /// Sampled search: evaluates `samples` uniformly drawn points instead
    /// of the whole space. Exhaustive search is cheap at this space's
    /// size, but larger spaces (joint HW + dataflow search, the GAMMA
    /// \[40\] setting the paper cites) need exactly this mode; the tests pin
    /// the sampling/exhaustive quality relationship.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn best_la_sampled(
        &self,
        space: SpaceKind,
        objective: Objective,
        samples: usize,
        seed: u64,
    ) -> DesignPoint {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        assert!(samples > 0, "need at least one sample");
        let points = la_points(space, self.block.config().seq_q);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cm = CostModel::new(self.accel);
        points
            .choose_multiple(&mut rng, samples.min(points.len()))
            .map(|&la| DesignPoint {
                la,
                report: cm.la_cost(self.block, &la),
            })
            .max_by(|a, b| {
                objective
                    .score(&a.report)
                    .partial_cmp(&objective.score(&b.report))
                    .expect("scores are finite")
            })
            .expect("sampled at least one point")
    }

    /// Best dataflow for the non-fused operators, judged on the block's
    /// projection + FC cost under `objective`.
    #[must_use]
    pub fn best_others(&self, objective: Objective) -> (OperatorDataflow, CostReport) {
        let cfg = *self.block.config();
        let cm = CostModel::new(self.accel);
        others_points()
            .into_iter()
            .map(|df| {
                let cost = self
                    .block
                    .operators_in_category(OpCategory::Projection)
                    .chain(self.block.operators_in_category(OpCategory::FeedForward))
                    .map(|op| cm.operator_cost(op, &df, &cfg))
                    .fold(CostReport::default(), |acc, r| acc.then(&r));
                (df, cost)
            })
            .max_by(|a, b| {
                objective
                    .score(&a.1)
                    .partial_cmp(&objective.score(&b.1))
                    .expect("finite")
            })
            .expect("others space is never empty")
    }

    /// Best full-block dataflow: the optimal L-A execution combined with
    /// the optimal non-fused-operator dataflow.
    #[must_use]
    pub fn best_block(&self, space: SpaceKind, objective: Objective) -> (BlockDataflow, BlockCost) {
        let la = self.best_la(space, objective);
        let (others, _) = self.best_others(objective);
        let df = BlockDataflow { la: la.la, others };
        let cost = CostModel::new(self.accel).block_cost(self.block, &df);
        (df, cost)
    }

    /// Best dataflow for a *decoder* block: the L-A strategy is searched
    /// on the cross-attention layer (its `[dec, enc]` logits dominate when
    /// the encoder context is long) and applied to both attention layers;
    /// non-fused operators get their own search.
    #[must_use]
    pub fn best_decoder_block(
        accel: &flat_arch::Accelerator,
        block: &flat_workloads::DecoderBlock,
        space: SpaceKind,
        objective: Objective,
    ) -> (BlockDataflow, crate::DecoderCost) {
        let cross_dse = Dse::new(accel, block.cross_attention());
        let la = cross_dse.best_la(space, objective);
        let (others, _) = cross_dse.best_others(objective);
        let df = BlockDataflow { la: la.la, others };
        let cost = CostModel::new(accel).decoder_block_cost(block, &df);
        (df, crate::DecoderCost { cost })
    }

    /// Best block dataflow judged at one of the Figure 8 scopes.
    #[must_use]
    pub fn best_at_scope(
        &self,
        space: SpaceKind,
        scope: Scope,
        objective: Objective,
    ) -> (BlockDataflow, CostReport) {
        match scope {
            Scope::LogitAttend => {
                let la = self.best_la(space, objective);
                let (others, _) = self.best_others(objective);
                (BlockDataflow { la: la.la, others }, la.report)
            }
            Scope::Block | Scope::Model => {
                let (df, cost) = self.best_block(space, objective);
                (df, cost.total())
            }
        }
    }
}

/// Pareto frontier of `(footprint, util)` points: keeps points not
/// dominated by any other (smaller-or-equal footprint *and* greater util).
/// Returned sorted by footprint — the top-left boundary of Figure 10.
#[must_use]
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut sorted: Vec<DesignPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.report.footprint.cmp(&b.report.footprint).then(
            b.report
                .util()
                .partial_cmp(&a.report.util())
                .expect("finite"),
        )
    });
    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best_util = f64::NEG_INFINITY;
    for p in sorted {
        if p.report.util() > best_util {
            best_util = p.report.util();
            frontier.push(p);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_arch::Accelerator;
    use flat_workloads::Model;

    #[test]
    fn flat_opt_dominates_base_opt() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let dse = Dse::new(&accel, &block);
        let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let flat = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        assert!(flat.report.util() >= base.report.util());
    }

    #[test]
    fn fused_space_wins_big_at_long_sequences() {
        let accel = Accelerator::cloud();
        let block = Model::xlm().block(64, 16_384);
        let dse = Dse::new(&accel, &block);
        let base = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
        let flat = dse.best_la(SpaceKind::Fused, Objective::MaxUtil);
        assert!(
            flat.report.util() > 1.3 * base.report.util(),
            "flat {} vs base {}",
            flat.report.util(),
            base.report.util()
        );
    }

    #[test]
    fn min_energy_objective_never_picks_higher_energy() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let dse = Dse::new(&accel, &block);
        let by_util = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        let by_energy = dse.best_la(SpaceKind::Full, Objective::MinEnergy);
        assert!(by_energy.report.energy.total_pj() <= by_util.report.energy.total_pj());
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let points = Dse::new(&accel, &block).explore_la(SpaceKind::Full);
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        for w in frontier.windows(2) {
            assert!(w[0].report.footprint <= w[1].report.footprint);
            assert!(w[0].report.util() < w[1].report.util());
        }
        // Every point is dominated by or on the frontier.
        let best = frontier.last().unwrap().report.util();
        assert!(points.iter().all(|p| p.report.util() <= best + 1e-12));
    }

    #[test]
    fn sampled_search_never_beats_exhaustive_and_converges() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let dse = Dse::new(&accel, &block);
        let exhaustive = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        let few = dse.best_la_sampled(SpaceKind::Full, Objective::MaxUtil, 10, 42);
        let many = dse.best_la_sampled(SpaceKind::Full, Objective::MaxUtil, 100_000, 42);
        assert!(few.report.util() <= exhaustive.report.util() + 1e-12);
        // Sampling more than the space size degenerates to exhaustive.
        assert!((many.report.util() - exhaustive.report.util()).abs() < 1e-12);
        // Determinism in the seed.
        let again = dse.best_la_sampled(SpaceKind::Full, Objective::MaxUtil, 10, 42);
        assert_eq!(few.report.util(), again.report.util());
    }

    #[test]
    fn decoder_search_beats_fixed_base() {
        let accel = Accelerator::cloud();
        let block = flat_workloads::DecoderBlock::for_model(&Model::t5_small(), 64, 1024, 16_384);
        let (df, best) =
            Dse::best_decoder_block(&accel, &block, SpaceKind::Full, Objective::MaxUtil);
        let base = flat_core::CostModel::new(&accel)
            .decoder_block_cost(&block, &flat_core::BlockDataflow::base());
        assert!(df.la.is_fused(), "long encoder context demands fusion");
        assert!(best.cost.total().cycles < base.total().cycles * 0.6);
    }

    #[test]
    fn traced_search_matches_untraced_and_is_deterministic() {
        use flat_telemetry::MemorySink;
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let dse = Dse::new(&accel, &block);
        let plain = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
        let mut sink = MemorySink::new();
        let traced = dse.best_la_traced(SpaceKind::Full, Objective::MaxUtil, &mut sink);
        assert_eq!(traced.la, plain.la, "tracing must not change the winner");
        assert_eq!(traced.report.util(), plain.report.util());
        // Progress events: every candidate evaluated, incumbents marked,
        // one closing totals counter.
        let evaluates = sink.events.iter().filter(|e| e.name == "evaluate").count();
        assert_eq!(evaluates, dse.explore_la(SpaceKind::Full).len());
        assert!(sink.events.iter().any(|e| e.name == "incumbent"));
        assert_eq!(
            sink.events.last().map(|e| e.name.as_str()),
            Some("dse_progress")
        );
        // Replay order is enumeration order — byte-identical across runs
        // despite the rayon evaluation.
        let mut again = MemorySink::new();
        let _ = dse.best_la_traced(SpaceKind::Full, Objective::MaxUtil, &mut again);
        assert_eq!(sink.to_chrome_trace(), again.to_chrome_trace());
    }

    #[test]
    fn traced_explore_returns_the_full_space() {
        use flat_telemetry::NoopSink;
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let dse = Dse::new(&accel, &block);
        let mut sink = NoopSink;
        let traced = dse.explore_la_traced(SpaceKind::Fused, Objective::MaxUtil, &mut sink);
        let plain = dse.explore_la(SpaceKind::Fused);
        assert_eq!(traced.len(), plain.len());
        assert!(traced
            .iter()
            .zip(&plain)
            .all(|(a, b)| a.la == b.la && a.report.cycles == b.report.cycles));
    }

    #[test]
    fn best_others_beats_naive_default() {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let dse = Dse::new(&accel, &block);
        let (_, best) = dse.best_others(Objective::MaxUtil);
        assert!(best.util() > 0.3);
    }
}
