//! Joint hardware + dataflow search under an area budget — the §8 design
//! question ("how should available area be provisioned and balanced across
//! compute/memory?") as a first-class API.

use crate::{Dse, Objective, SpaceKind};
use flat_arch::{Accelerator, AreaModel, MemorySystem, Sfu};
use flat_core::CostReport;
use flat_tensor::Bytes;
use flat_workloads::AttentionBlock;
use serde::{Deserialize, Serialize};

/// The hardware half of the search space: a fixed memory system and area
/// model, with the die split between PE array and scratchpad varying.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwSearchSpec {
    /// Total die budget in mm².
    pub area_budget_mm2: f64,
    /// Component cost model.
    pub area: AreaModel,
    /// Off-/on-chip bandwidths (fixed across candidates).
    pub mem: MemorySystem,
    /// SFU throughput (fixed across candidates).
    pub sfu_lanes: u64,
    /// Scratchpad capacities to try, in KiB.
    pub sg_options_kib: Vec<u64>,
}

impl HwSearchSpec {
    /// An edge-class search: a handful of mm², edge memory system,
    /// 64 KiB – 4 MiB scratchpad options.
    #[must_use]
    pub fn edge_class(area_budget_mm2: f64) -> Self {
        HwSearchSpec {
            area_budget_mm2,
            area: AreaModel::default_28nm(),
            mem: MemorySystem::new(1.0e12, 50.0e9),
            sfu_lanes: 256,
            sg_options_kib: vec![64, 128, 256, 512, 1024, 2048, 4096],
        }
    }

    /// Enumerates the affordable (accelerator, area) candidates.
    #[must_use]
    pub fn candidates(&self) -> Vec<HwCandidate> {
        self.sg_options_kib
            .iter()
            .filter_map(|&sg_kib| {
                let dim = self.area.pe_dim_for_budget(
                    self.area_budget_mm2,
                    sg_kib as f64,
                    self.sfu_lanes,
                )?;
                let accel = Accelerator::builder(format!("hw-{sg_kib}k-{dim}x{dim}"))
                    .pe(dim, dim)
                    .sg(Bytes::from_kib(sg_kib))
                    .sfu(Sfu::new(self.sfu_lanes, 16))
                    .memory(self.mem)
                    .build();
                let area_mm2 = self.area.area_mm2(&accel);
                Some(HwCandidate { accel, area_mm2 })
            })
            .collect()
    }
}

/// One affordable hardware point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwCandidate {
    /// The accelerator configuration.
    pub accel: Accelerator,
    /// Its die area under the spec's model.
    pub area_mm2: f64,
}

/// Outcome of the joint search: the winning hardware split and its best
/// dataflow's cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwSearchResult {
    /// Winning hardware.
    pub hw: HwCandidate,
    /// Cost of the best dataflow on it.
    pub report: CostReport,
    /// Useful MAC throughput (peak × utilization), the cross-hardware
    /// figure of merit — utilization alone would favor tiny arrays.
    pub useful_macs_per_cycle: f64,
}

/// Searches hardware × dataflow jointly: for every affordable split, runs
/// the dataflow DSE in `space` and keeps the split with the highest useful
/// throughput.
///
/// Returns `None` when no candidate fits the budget.
///
/// # Example
///
/// ```
/// use flat_dse::{best_hardware, HwSearchSpec, Objective, SpaceKind};
/// use flat_workloads::Model;
///
/// let spec = HwSearchSpec::edge_class(4.0);
/// let block = Model::bert().block(64, 4096);
/// let base = best_hardware(&spec, &block, SpaceKind::Sequential, Objective::MaxUtil).unwrap();
/// let flat = best_hardware(&spec, &block, SpaceKind::Full, Objective::MaxUtil).unwrap();
/// // §8: the FLAT-capable design needs no more scratchpad than the
/// // sequential one, and turns the same silicon into more throughput.
/// assert!(flat.hw.accel.sg <= base.hw.accel.sg);
/// assert!(flat.useful_macs_per_cycle >= base.useful_macs_per_cycle);
/// ```
#[must_use]
pub fn best_hardware(
    spec: &HwSearchSpec,
    block: &AttentionBlock,
    space: SpaceKind,
    objective: Objective,
) -> Option<HwSearchResult> {
    spec.candidates()
        .into_iter()
        .map(|hw| {
            let best = Dse::new(&hw.accel, block).best_la(space, objective);
            let useful = hw.accel.peak_macs_per_cycle() as f64 * best.report.util();
            HwSearchResult {
                hw,
                report: best.report,
                useful_macs_per_cycle: useful,
            }
        })
        .max_by(|a, b| {
            a.useful_macs_per_cycle
                .partial_cmp(&b.useful_macs_per_cycle)
                .expect("finite throughput")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_workloads::Model;

    #[test]
    fn candidates_respect_the_budget() {
        let spec = HwSearchSpec::edge_class(4.0);
        let cands = spec.candidates();
        assert!(cands.len() >= 4);
        for c in &cands {
            assert!(c.area_mm2 <= 4.0 + 1e-9, "{} at {}", c.accel, c.area_mm2);
        }
    }

    #[test]
    fn more_sram_means_fewer_pes() {
        let spec = HwSearchSpec::edge_class(4.0);
        let cands = spec.candidates();
        for w in cands.windows(2) {
            assert!(w[0].accel.sg < w[1].accel.sg);
            assert!(w[0].accel.pe.count() >= w[1].accel.pe.count());
        }
    }

    /// The §8 claim as a test: under the same budget, the FLAT-capable
    /// design beats the sequential-only one on useful throughput, with
    /// a scratchpad no larger.
    #[test]
    fn flat_rebalances_area_toward_compute() {
        let spec = HwSearchSpec::edge_class(4.0);
        let block = Model::bert().block(64, 4096);
        let base = best_hardware(&spec, &block, SpaceKind::Sequential, Objective::MaxUtil).unwrap();
        let flat = best_hardware(&spec, &block, SpaceKind::Full, Objective::MaxUtil).unwrap();
        assert!(
            flat.useful_macs_per_cycle > 1.2 * base.useful_macs_per_cycle,
            "flat {} vs base {}",
            flat.useful_macs_per_cycle,
            base.useful_macs_per_cycle
        );
        assert!(flat.hw.accel.sg <= base.hw.accel.sg);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let mut spec = HwSearchSpec::edge_class(0.05);
        spec.sg_options_kib = vec![100_000];
        let block = Model::bert().block(8, 512);
        assert!(best_hardware(&spec, &block, SpaceKind::Full, Objective::MaxUtil).is_none());
    }
}
