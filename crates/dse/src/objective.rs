//! Optimization objectives for the design-space exploration (§5.3.3,
//! §6.4: "the objective target in the DSE is flexible").

use flat_core::CostReport;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the DSE maximizes. Every objective is expressed as a
/// higher-is-better score over a [`CostReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize compute-resource utilization (the paper's default).
    MaxUtil,
    /// Minimize total energy.
    MinEnergy,
    /// Minimize energy-delay product.
    MinEdp,
    /// Minimize live memory footprint (the Figure 10 "left-most region").
    MinFootprint,
    /// Maximize utilization per MiB of live footprint (the Figure 10
    /// "top-left corner").
    UtilPerFootprint,
}

impl Objective {
    /// Higher-is-better score of a report under this objective.
    #[must_use]
    pub fn score(&self, report: &CostReport) -> f64 {
        match self {
            Objective::MaxUtil => report.util(),
            Objective::MinEnergy => -report.energy.total_pj(),
            Objective::MinEdp => -(report.energy.total_pj() * report.cycles),
            Objective::MinFootprint => -report.footprint.as_f64(),
            Objective::UtilPerFootprint => {
                report.util() / report.footprint.as_f64().max(1.0) * (1024.0 * 1024.0)
            }
        }
    }

    /// All objectives, for sweeps.
    #[must_use]
    pub const fn all() -> [Objective; 5] {
        [
            Objective::MaxUtil,
            Objective::MinEnergy,
            Objective::MinEdp,
            Objective::MinFootprint,
            Objective::UtilPerFootprint,
        ]
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Objective::MaxUtil => "max-util",
            Objective::MinEnergy => "min-energy",
            Objective::MinEdp => "min-edp",
            Objective::MinFootprint => "min-footprint",
            Objective::UtilPerFootprint => "util-per-footprint",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_arch::EnergyBreakdown;
    use flat_tensor::Bytes;

    fn report(cycles: f64, ideal: f64, pj: f64, fp: u64) -> CostReport {
        CostReport {
            cycles,
            ideal_cycles: ideal,
            energy: EnergyBreakdown {
                compute_pj: pj,
                ..Default::default()
            },
            footprint: Bytes::new(fp),
            ..Default::default()
        }
    }

    #[test]
    fn max_util_prefers_higher_util() {
        let good = report(100.0, 90.0, 1.0, 1);
        let bad = report(100.0, 20.0, 1.0, 1);
        assert!(Objective::MaxUtil.score(&good) > Objective::MaxUtil.score(&bad));
    }

    #[test]
    fn min_energy_prefers_lower_energy() {
        let frugal = report(100.0, 50.0, 10.0, 1);
        let hungry = report(100.0, 50.0, 99.0, 1);
        assert!(Objective::MinEnergy.score(&frugal) > Objective::MinEnergy.score(&hungry));
    }

    #[test]
    fn edp_trades_both_axes() {
        let fast_hungry = report(10.0, 9.0, 100.0, 1);
        let slow_frugal = report(1000.0, 900.0, 10.0, 1);
        // EDP: 1000 vs 10000 -> fast wins despite higher energy.
        assert!(Objective::MinEdp.score(&fast_hungry) > Objective::MinEdp.score(&slow_frugal));
    }

    #[test]
    fn footprint_objectives_reward_small_buffers() {
        let lean = report(100.0, 80.0, 1.0, 1024);
        let fat = report(100.0, 80.0, 1.0, 1 << 30);
        assert!(Objective::MinFootprint.score(&lean) > Objective::MinFootprint.score(&fat));
        assert!(Objective::UtilPerFootprint.score(&lean) > Objective::UtilPerFootprint.score(&fat));
    }
}
