//! The accelerator comparison matrix of Figure 7(c): BaseAccel,
//! FlexAccel-M, FlexAccel, ATTACC-M, ATTACC-Rx, ATTACC.

use crate::{Dse, Objective, SpaceKind};
use flat_core::{BlockCost, BlockDataflow, CostModel};
use flat_workloads::Model;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An accelerator *capability class*: how flexible its dataflow support is
/// and which granularities it can stage. All classes share the same
/// silicon budget (PEs, SG, bandwidth); they differ only in which
/// dataflows their controllers can express — which is exactly the paper's
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccelClass {
    /// Conventional DNN accelerator: fixed `Base` dataflow.
    BaseAccel,
    /// Flexible intra-operator dataflow, programmable scratchpad staging
    /// at whole-tensor (M-Gran) granularity only.
    FlexAccelM,
    /// Fully flexible baseline accelerator: the whole sequential space
    /// (`Base-opt`).
    FlexAccel,
    /// FLAT-capable but fixed to M-Gran FLAT-tiles.
    AttAccM,
    /// FLAT-capable but fixed to R-Gran with the given row count.
    AttAccR(u64),
    /// Fully FLAT-capable accelerator: the whole design space
    /// (`FLAT-opt`).
    AttAcc,
}

impl AccelClass {
    /// The search space this class's controller can express.
    #[must_use]
    pub fn space(&self) -> SpaceKind {
        match self {
            AccelClass::BaseAccel => SpaceKind::BaseOnly,
            AccelClass::FlexAccelM => SpaceKind::SequentialMGran,
            AccelClass::FlexAccel => SpaceKind::Sequential,
            AccelClass::AttAccM => SpaceKind::FusedMGran,
            AccelClass::AttAccR(r) => SpaceKind::FusedRow(*r),
            AccelClass::AttAcc => SpaceKind::Full,
        }
    }

    /// The classes compared in Figure 11/12.
    #[must_use]
    pub fn comparison_set() -> Vec<AccelClass> {
        vec![
            AccelClass::BaseAccel,
            AccelClass::FlexAccelM,
            AccelClass::FlexAccel,
            AccelClass::AttAcc,
        ]
    }

    /// Evaluates this class on a model: finds the best dataflow its
    /// controller can express (for BaseAccel there is a small fixed set)
    /// and prices the whole model.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_dse::{AccelClass, Objective};
    /// use flat_workloads::Model;
    ///
    /// let accel = Accelerator::edge();
    /// let flex = AccelClass::FlexAccel.evaluate(&accel, &Model::bert(), 64, 4096, Objective::MaxUtil);
    /// let attacc = AccelClass::AttAcc.evaluate(&accel, &Model::bert(), 64, 4096, Objective::MaxUtil);
    /// assert!(attacc.cost.total().cycles <= flex.cost.total().cycles);
    /// ```
    #[must_use]
    pub fn evaluate(
        &self,
        accel: &flat_arch::Accelerator,
        model: &Model,
        batch: u64,
        seq: u64,
        objective: Objective,
    ) -> AccelEvaluation {
        let block = model.block(batch, seq);
        let dse = Dse::new(accel, &block);
        let (dataflow, per_block) = dse.best_block(self.space(), objective);
        let cost = per_block.repeat(model.blocks());
        AccelEvaluation {
            class: *self,
            dataflow,
            cost,
        }
    }

    /// Prices a *fixed* dataflow on the whole model (no search) — used for
    /// the non-stall reference and ablations.
    #[must_use]
    pub fn evaluate_fixed(
        accel: &flat_arch::Accelerator,
        model: &Model,
        batch: u64,
        seq: u64,
        dataflow: &BlockDataflow,
    ) -> AccelEvaluation {
        let cost = CostModel::new(accel).model_cost(model, batch, seq, dataflow);
        AccelEvaluation {
            class: AccelClass::BaseAccel,
            dataflow: *dataflow,
            cost,
        }
    }
}

impl fmt::Display for AccelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelClass::BaseAccel => f.write_str("BaseAccel"),
            AccelClass::FlexAccelM => f.write_str("FlexAccel-M"),
            AccelClass::FlexAccel => f.write_str("FlexAccel"),
            AccelClass::AttAccM => f.write_str("ATTACC-M"),
            AccelClass::AttAccR(r) => write!(f, "ATTACC-R{r}"),
            AccelClass::AttAcc => f.write_str("ATTACC"),
        }
    }
}

/// Outcome of evaluating an accelerator class on a model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelEvaluation {
    /// Which class was evaluated.
    pub class: AccelClass,
    /// The dataflow its controller picked.
    pub dataflow: BlockDataflow,
    /// Whole-model cost, split by operator category.
    pub cost: BlockCost,
}

impl AccelEvaluation {
    /// Model-level speedup of `self` over `other` (>1 means `self` is
    /// faster).
    #[must_use]
    pub fn speedup_over(&self, other: &AccelEvaluation) -> f64 {
        other.cost.total().cycles / self.cost.total().cycles
    }

    /// Model-level energy-consumption ratio of `self` vs `other`
    /// (<1 means `self` uses less energy).
    #[must_use]
    pub fn energy_ratio_vs(&self, other: &AccelEvaluation) -> f64 {
        self.cost.total().energy.total_pj() / other.cost.total().energy.total_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_arch::Accelerator;

    #[test]
    fn class_hierarchy_is_monotone_in_capability() {
        let accel = Accelerator::edge();
        let model = Model::bert();
        let obj = Objective::MaxUtil;
        let base = AccelClass::BaseAccel.evaluate(&accel, &model, 64, 4096, obj);
        let flexm = AccelClass::FlexAccelM.evaluate(&accel, &model, 64, 4096, obj);
        let flex = AccelClass::FlexAccel.evaluate(&accel, &model, 64, 4096, obj);
        let attacc = AccelClass::AttAcc.evaluate(&accel, &model, 64, 4096, obj);
        // Strictly larger search spaces can only help runtime.
        assert!(flex.cost.total().cycles <= flexm.cost.total().cycles);
        assert!(attacc.cost.total().cycles <= flex.cost.total().cycles);
        assert!(flex.cost.total().cycles <= base.cost.total().cycles);
    }

    #[test]
    fn attacc_speedup_in_paper_range_at_4k_edge() {
        let accel = Accelerator::edge();
        let model = Model::bert();
        let obj = Objective::MaxUtil;
        let flex = AccelClass::FlexAccel.evaluate(&accel, &model, 64, 4096, obj);
        let attacc = AccelClass::AttAcc.evaluate(&accel, &model, 64, 4096, obj);
        let s = attacc.speedup_over(&flex);
        // Paper (Fig 12a, BERT edge 4K): 1.27x over FlexAccel. Accept a
        // generous band: meaningfully faster, not absurdly so.
        assert!((1.0..4.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn attacc_saves_energy() {
        let accel = Accelerator::cloud();
        let model = Model::xlm();
        let obj = Objective::MaxUtil;
        let flexm = AccelClass::FlexAccelM.evaluate(&accel, &model, 64, 16_384, obj);
        let attacc = AccelClass::AttAcc.evaluate(&accel, &model, 64, 16_384, obj);
        assert!(attacc.energy_ratio_vs(&flexm) < 1.0);
    }

    #[test]
    fn labels_match_figure_7c() {
        assert_eq!(AccelClass::FlexAccelM.to_string(), "FlexAccel-M");
        assert_eq!(AccelClass::AttAccR(64).to_string(), "ATTACC-R64");
    }
}
