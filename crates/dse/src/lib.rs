//! Design-space exploration for FLAT dataflows and ATTACC accelerators
//! (§5.3.3).
//!
//! The DSE enumerates every dataflow hyper-parameter of Figure 6(a) —
//! cross-operator granularity (M/B/H/R with candidate row counts),
//! FLAT-tile enables, stage stationarities, and the sequential-baseline
//! equivalents — prices each point with the `flat-core` cost model, and
//! optimizes a pluggable [`Objective`] (utilization, energy, EDP,
//! footprint).
//!
//! [`SpaceKind`] restricts the search to what a given accelerator's
//! controller can express; [`AccelClass`] packages the Figure 7(c)
//! comparison matrix (BaseAccel / FlexAccel-M / FlexAccel / ATTACC-*).
//!
//! # Example
//!
//! ```
//! use flat_arch::Accelerator;
//! use flat_dse::{Dse, Objective, SpaceKind};
//! use flat_workloads::Model;
//!
//! let accel = Accelerator::cloud();
//! let block = Model::xlm().block(64, 16_384);
//! let dse = Dse::new(&accel, &block);
//!
//! let base_opt = dse.best_la(SpaceKind::Sequential, Objective::MaxUtil);
//! let flat_opt = dse.best_la(SpaceKind::Full, Objective::MaxUtil);
//! assert!(flat_opt.report.util() >= base_opt.report.util());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod hw;
mod objective;
mod precision;
mod search;
mod space;

pub use accel::{AccelClass, AccelEvaluation};
pub use hw::{best_hardware, HwCandidate, HwSearchResult, HwSearchSpec};
pub use objective::Objective;
pub use precision::{precision_pareto, PrecisionChoice, PrecisionPoint};
pub use search::{pareto_frontier, DesignPoint, Dse};
pub use space::{la_points, others_points, row_candidates, SpaceKind};

/// Cost of a searched decoder block (wrapper for future breakdowns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderCost {
    /// The per-category block cost.
    pub cost: flat_core::BlockCost,
}
