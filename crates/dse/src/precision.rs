//! Joint precision × softmax-family exploration: answers "is bf16 +
//! FLASH-D worth it over f32 + exact softmax?" with costs, not vibes.
//!
//! Each [`PrecisionChoice`] pairs a storage element width with a softmax
//! algorithm. For every choice the block is re-typed to that width and the
//! cost model re-optioned to that softmax kind, then the *dataflow* search
//! runs inside it — so each precision competes with its own best dataflow,
//! not with a dataflow tuned for another width. The result set feeds a
//! cycles-vs-energy Pareto frontier ([`precision_pareto`]).

use crate::{la_points, Dse, Objective, SpaceKind};
use flat_core::{CostModel, CostReport, LaExecution, ModelOptions};
use flat_tensor::{DataType, SoftmaxKind};
use flat_workloads::AttentionBlock;
use serde::{Deserialize, Serialize};

/// One point in the precision plane: a storage width and a softmax kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrecisionChoice {
    /// Element width Q/K/V/logits are stored at.
    pub dtype: DataType,
    /// Softmax family member the SFU runs.
    pub softmax: SoftmaxKind,
}

impl PrecisionChoice {
    /// The full cross product, reference (`fp32` × `exact`) first.
    #[must_use]
    pub fn all() -> Vec<PrecisionChoice> {
        let mut out = vec![PrecisionChoice {
            dtype: DataType::Fp32,
            softmax: SoftmaxKind::Exact,
        }];
        for &dtype in DataType::all() {
            for &softmax in SoftmaxKind::all() {
                let c = PrecisionChoice { dtype, softmax };
                if c != out[0] {
                    out.push(c);
                }
            }
        }
        out
    }

    /// `"bf16+flash-d"`-style label for tables and JSON keys.
    #[must_use]
    pub fn label(&self) -> String {
        let kind = match self.softmax {
            SoftmaxKind::Exact => "exact",
            SoftmaxKind::FlashD => "flash-d",
            SoftmaxKind::LogLut => "log-lut",
        };
        format!("{}+{kind}", self.dtype)
    }
}

/// A precision choice with the best dataflow found inside it and that
/// dataflow's cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionPoint {
    /// The storage width / softmax pairing.
    pub choice: PrecisionChoice,
    /// Best L-A execution for this pairing.
    pub la: LaExecution,
    /// Its cost, priced at the pairing's width and softmax kind.
    pub report: CostReport,
}

impl Dse<'_> {
    /// Searches the dataflow space once per [`PrecisionChoice`] and
    /// returns every (choice, best dataflow) pair.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Accelerator;
    /// use flat_dse::{Dse, Objective, SpaceKind};
    /// use flat_workloads::Model;
    ///
    /// let accel = Accelerator::edge();
    /// let block = Model::bert().block(64, 512);
    /// let points = Dse::new(&accel, &block)
    ///     .explore_precision(SpaceKind::Full, Objective::MinEnergy);
    /// assert_eq!(points.len(), flat_dse::PrecisionChoice::all().len());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the dataflow space is empty (it never is for the
    /// provided [`SpaceKind`]s).
    #[must_use]
    pub fn explore_precision(&self, space: SpaceKind, objective: Objective) -> Vec<PrecisionPoint> {
        use rayon::prelude::*;
        let cfg = *self.block.config();
        let points = la_points(space, cfg.seq_q);
        PrecisionChoice::all()
            .into_iter()
            .map(|choice| {
                let block = AttentionBlock::new(cfg.with_dtype(choice.dtype));
                let cm = CostModel::with_options(
                    self.accel,
                    ModelOptions {
                        softmax: choice.softmax,
                        ..Default::default()
                    },
                );
                let best = points
                    .par_iter()
                    .map(|&la| (la, cm.la_cost(&block, &la)))
                    .max_by(|a, b| {
                        objective
                            .score(&a.1)
                            .partial_cmp(&objective.score(&b.1))
                            .expect("scores are finite")
                    })
                    .expect("design space is never empty");
                PrecisionPoint {
                    choice,
                    la: best.0,
                    report: best.1,
                }
            })
            .collect()
    }
}

/// Cycles-vs-energy Pareto frontier of precision points: keeps points no
/// other point beats on *both* runtime and energy. Returned sorted by
/// cycles ascending (so energy descends along the frontier).
#[must_use]
pub fn precision_pareto(points: &[PrecisionPoint]) -> Vec<PrecisionPoint> {
    let mut sorted: Vec<PrecisionPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.report
            .cycles
            .partial_cmp(&b.report.cycles)
            .expect("finite")
            .then(
                a.report
                    .energy
                    .total_pj()
                    .partial_cmp(&b.report.energy.total_pj())
                    .expect("finite"),
            )
    });
    let mut frontier: Vec<PrecisionPoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in sorted {
        if p.report.energy.total_pj() < best_energy {
            best_energy = p.report.energy.total_pj();
            frontier.push(p);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_arch::Accelerator;
    use flat_workloads::Model;

    fn points() -> Vec<PrecisionPoint> {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        Dse::new(&accel, &block).explore_precision(SpaceKind::Full, Objective::MinEnergy)
    }

    #[test]
    fn choice_set_is_the_full_cross_product_reference_first() {
        let all = PrecisionChoice::all();
        assert_eq!(all.len(), DataType::all().len() * SoftmaxKind::all().len());
        assert_eq!(
            all[0],
            PrecisionChoice {
                dtype: DataType::Fp32,
                softmax: SoftmaxKind::Exact
            }
        );
        // No duplicates.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn bf16_flash_d_prices_cheaper_in_energy_than_f32_exact() {
        let pts = points();
        let find = |dtype, softmax| {
            pts.iter()
                .find(|p| p.choice == PrecisionChoice { dtype, softmax })
                .expect("choice present")
        };
        let f32_exact = find(DataType::Fp32, SoftmaxKind::Exact);
        let bf16_flashd = find(DataType::Bf16, SoftmaxKind::FlashD);
        assert!(
            bf16_flashd.report.energy.total_pj() < f32_exact.report.energy.total_pj(),
            "bf16+flash-d {} pJ vs f32+exact {} pJ",
            bf16_flashd.report.energy.total_pj(),
            f32_exact.report.energy.total_pj()
        );
        assert!(bf16_flashd.report.cycles <= f32_exact.report.cycles * (1.0 + 1e-9));
    }

    #[test]
    fn pareto_front_contains_a_sub_f32_width_and_is_monotone() {
        let front = precision_pareto(&points());
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].report.cycles <= w[1].report.cycles);
            assert!(w[0].report.energy.total_pj() > w[1].report.energy.total_pj());
        }
        // The frontier must exploit reduced width somewhere: some member
        // is cheaper in energy than the f32+exact reference.
        let all = points();
        let reference = all
            .iter()
            .find(|p| {
                p.choice
                    == PrecisionChoice {
                        dtype: DataType::Fp32,
                        softmax: SoftmaxKind::Exact,
                    }
            })
            .unwrap();
        assert!(front.iter().any(|p| p.report.energy.total_pj()
            < reference.report.energy.total_pj()
            && p.choice.dtype.size_bits() < 32));
    }

    #[test]
    fn labels_are_unique_and_parseable_shape() {
        let all = PrecisionChoice::all();
        let labels: std::collections::HashSet<_> = all.iter().map(PrecisionChoice::label).collect();
        assert_eq!(labels.len(), all.len());
        assert!(labels.contains("bf16+flash-d"));
        assert!(labels.contains("fp32+exact"));
    }
}
