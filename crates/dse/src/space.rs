//! Design-space enumeration: every hyper-parameter Figure 6(a) lists
//! under "Dataflow".

use flat_core::{
    FusedDataflow, FusedEnables, Granularity, LaExecution, OperandEnables, OperatorDataflow,
    Stationarity,
};
use serde::{Deserialize, Serialize};

/// Which part of the dataflow design space a search may draw from —
/// the "Flexible dataflow support" / "Granularity" columns of Figure 7(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpaceKind {
    /// Sequential dataflows only, no L3 tier: the fixed `Base` point.
    BaseOnly,
    /// Sequential dataflows with L3 restricted to M-Gran (FlexAccel-M:
    /// programmable scratchpad, but no finer-grained cross-operator tiles).
    SequentialMGran,
    /// The full sequential space: `Base-opt`'s search domain (FlexAccel).
    Sequential,
    /// Fused dataflows restricted to M-Gran (ATTACC-M).
    FusedMGran,
    /// Fused dataflows restricted to one row count (ATTACC-Rx).
    FusedRow(u64),
    /// The full fused space (FLAT-opt's domain minus the sequential
    /// points).
    Fused,
    /// Everything: sequential ∪ fused — ATTACC's domain. FLAT can express
    /// every baseline dataflow by degrading to single-operator tiling
    /// (§4.5), so this is the superset.
    Full,
}

/// Candidate row counts for R-Gran at a sequence length: powers of four up
/// to the sequence, which spans the interesting range without blowing up
/// the search.
#[must_use]
pub fn row_candidates(seq: u64) -> Vec<u64> {
    let mut rows: Vec<u64> = [4u64, 16, 64, 256, 1024, 4096]
        .into_iter()
        .filter(|&r| r < seq)
        .collect();
    rows.push(seq.min(8192));
    rows.dedup();
    rows
}

/// The staging-enable presets the search tries for sequential operators.
fn operand_enable_presets() -> Vec<OperandEnables> {
    vec![
        OperandEnables::all(),
        OperandEnables {
            input_a: true,
            input_b: true,
            output: false,
        },
        OperandEnables {
            input_a: false,
            input_b: false,
            output: true,
        },
    ]
}

/// The FLAT-tile enable presets the search tries for fused dataflows.
fn fused_enable_presets() -> Vec<FusedEnables> {
    vec![
        FusedEnables::all(),
        FusedEnables::intermediate_only(),
        // Keep the reused K/V tiles and the intermediate; stream Q and O
        // (they are touched once anyway) — the lean footprint choice.
        FusedEnables {
            query: false,
            key: true,
            value: true,
            output: false,
            intermediate: true,
        },
        // Everything but the intermediate: what fusion-less staging buys.
        FusedEnables {
            query: true,
            key: true,
            value: true,
            output: true,
            intermediate: false,
        },
    ]
}

/// Stage-stationarity pairs (L, A) the fused search tries.
fn fused_stationarity_presets() -> Vec<(Stationarity, Stationarity)> {
    vec![
        (Stationarity::Output, Stationarity::Input),
        (Stationarity::Output, Stationarity::Output),
        (Stationarity::Input, Stationarity::Input),
        (Stationarity::Weight, Stationarity::Weight),
        (Stationarity::Weight, Stationarity::Input),
    ]
}

/// Enumerates the sequential L-A design points for a space.
fn sequential_points(space: SpaceKind) -> Vec<LaExecution> {
    let grans: Vec<Granularity> = match space {
        SpaceKind::BaseOnly => vec![],
        SpaceKind::SequentialMGran => vec![Granularity::BatchMultiHead],
        _ => Granularity::coarse().to_vec(),
    };
    let mut out = Vec::new();
    for stat_l in Stationarity::all() {
        for stat_a in Stationarity::all() {
            out.push(LaExecution::Sequential {
                logit: OperatorDataflow::baseline(stat_l),
                attend: OperatorDataflow::baseline(stat_a),
            });
            for &gran in &grans {
                for enables in operand_enable_presets() {
                    let mk = |stat| OperatorDataflow {
                        stationarity: stat,
                        l3: Some(flat_core::L3Config {
                            granularity: gran,
                            enables,
                        }),
                    };
                    out.push(LaExecution::Sequential {
                        logit: mk(stat_l),
                        attend: mk(stat_a),
                    });
                }
            }
        }
    }
    out
}

/// Enumerates the fused L-A design points for a space at a sequence
/// length.
fn fused_points(space: SpaceKind, seq: u64) -> Vec<LaExecution> {
    let grans: Vec<Granularity> = match space {
        SpaceKind::FusedMGran => vec![Granularity::BatchMultiHead],
        SpaceKind::FusedRow(r) => vec![Granularity::Row(r)],
        SpaceKind::Fused | SpaceKind::Full => {
            let mut g = Granularity::coarse().to_vec();
            let rows = row_candidates(seq);
            g.extend(rows.iter().copied().map(Granularity::Row));
            // Composite (B_t, H_t, R) tiles (§4.2.2): a few head/batch
            // multiples of the most promising row counts, which recover
            // array parallelism when dk underfills it.
            for &r in rows.iter().rev().take(2) {
                for (batch_t, head_t) in [(1, 2), (1, 4), (2, 1), (4, 2)] {
                    g.push(Granularity::Composite {
                        batch_t,
                        head_t,
                        rows: r,
                    });
                }
            }
            g
        }
        _ => vec![],
    };
    let mut out = Vec::new();
    for &granularity in &grans {
        for enables in fused_enable_presets() {
            for (stationarity_l, stationarity_a) in fused_stationarity_presets() {
                out.push(LaExecution::Fused(FusedDataflow {
                    granularity,
                    enables,
                    stationarity_l,
                    stationarity_a,
                    execution: flat_core::FusedExecution::Interleaved,
                }));
            }
        }
    }
    out
}

/// Enumerates every L-A execution point in `space` for a workload with
/// sequence length `seq`.
///
/// # Example
///
/// ```
/// use flat_dse::{la_points, SpaceKind};
///
/// let base = la_points(SpaceKind::Sequential, 4096);
/// let full = la_points(SpaceKind::Full, 4096);
/// // FLAT's space strictly contains the sequential space.
/// assert!(full.len() > base.len());
/// ```
#[must_use]
pub fn la_points(space: SpaceKind, seq: u64) -> Vec<LaExecution> {
    match space {
        SpaceKind::BaseOnly | SpaceKind::SequentialMGran | SpaceKind::Sequential => {
            sequential_points(space)
        }
        SpaceKind::FusedMGran | SpaceKind::FusedRow(_) | SpaceKind::Fused => {
            fused_points(space, seq)
        }
        SpaceKind::Full => {
            let mut pts = sequential_points(SpaceKind::Sequential);
            pts.extend(fused_points(SpaceKind::Full, seq));
            pts
        }
    }
}

/// Enumerates dataflow candidates for the non-fused operators
/// (Q/K/V/O/FC): stationarity × {no L3, M-Gran all-staged}.
#[must_use]
pub fn others_points() -> Vec<OperatorDataflow> {
    let mut out = Vec::new();
    for stat in Stationarity::all() {
        out.push(OperatorDataflow::baseline(stat));
        out.push(OperatorDataflow::staged(stat, Granularity::BatchMultiHead));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_only_has_nine_points() {
        // 3 stationarities per operator, no L3 options.
        assert_eq!(la_points(SpaceKind::BaseOnly, 512).len(), 9);
    }

    #[test]
    fn sequential_space_nests() {
        let base = la_points(SpaceKind::BaseOnly, 512).len();
        let m = la_points(SpaceKind::SequentialMGran, 512).len();
        let seq = la_points(SpaceKind::Sequential, 512).len();
        assert!(base < m && m < seq);
    }

    #[test]
    fn full_space_contains_both() {
        let seq = la_points(SpaceKind::Sequential, 512).len();
        let fused = la_points(SpaceKind::Fused, 512).len();
        assert_eq!(la_points(SpaceKind::Full, 512).len(), seq + fused);
    }

    #[test]
    fn fused_row_space_fixes_granularity() {
        for p in la_points(SpaceKind::FusedRow(64), 512) {
            match p {
                LaExecution::Fused(f) => {
                    assert_eq!(f.granularity, Granularity::Row(64));
                }
                LaExecution::Sequential { .. } => panic!("row space is fused-only"),
            }
        }
    }

    #[test]
    fn row_candidates_respect_sequence_length() {
        assert_eq!(row_candidates(8), vec![4, 8]);
        let long = row_candidates(262_144);
        assert!(long.contains(&4096));
        assert!(long.iter().all(|&r| r <= 262_144));
    }

    #[test]
    fn others_points_cover_all_stationarities() {
        let pts = others_points();
        assert_eq!(pts.len(), 6);
        assert!(pts.iter().any(|p| p.l3.is_none()));
        assert!(pts.iter().any(|p| p.l3.is_some()));
    }
}
