//! Property tests for the GPU mapping.

use flat_gpu::{Gpu, GpuAttention};
use flat_workloads::AttentionConfig;
use proptest::prelude::*;

fn configs() -> impl Strategy<Value = AttentionConfig> {
    (
        1u64..=64,
        prop::sample::select(vec![4u64, 8, 16, 32]),
        prop::sample::select(vec![256u64, 1024, 4096, 16_384]),
        prop::sample::select(vec![512u64, 1024, 2048, 4096]),
    )
        .prop_filter("divisible", |(_, h, _, d)| d % h == 0)
        .prop_map(|(b, h, n, d)| AttentionConfig::self_attention(b, h, n, d, 4 * d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In the realistic regime (per-head dimension ≤ 128, as in every
    /// model of the suite) the fused kernel never moves more HBM than the
    /// unfused baseline, and never loses time with enough thread blocks
    /// to fill the device. (At huge dk and tiny N, re-reading K/V can
    /// genuinely exceed the small logit tensor's traffic — fusion is not
    /// free lunch there, for FlashAttention either.)
    #[test]
    fn fusion_dominates_at_realistic_dk(cfg in configs()) {
        prop_assume!(cfg.dk() <= 128);
        let gpu = Gpu::a100_like();
        let fused = GpuAttention::fused_best(&gpu, &cfg);
        let unfused = GpuAttention::unfused(&gpu, &cfg);
        prop_assert!(fused.hbm_bytes <= unfused.hbm_bytes);
        if cfg.batch * cfg.heads >= gpu.sms {
            prop_assert!(fused.seconds <= unfused.seconds * 1.001);
        }
    }

    /// Efficiency is a fraction of peak, and times respect the compute
    /// lower bound.
    #[test]
    fn sanity_bounds(cfg in configs()) {
        let gpu = Gpu::v100_like();
        for r in [GpuAttention::fused_best(&gpu, &cfg), GpuAttention::unfused(&gpu, &cfg)] {
            prop_assert!(r.efficiency > 0.0 && r.efficiency <= 1.0 + 1e-9);
            prop_assert!(r.seconds >= r.compute_seconds * (1.0 - 1e-9));
            prop_assert!(r.seconds.is_finite());
        }
    }

    /// Unfused time is monotone in sequence length (more work, more
    /// intermediate traffic).
    #[test]
    fn unfused_monotone_in_seq(
        b in 1u64..32,
        h in prop::sample::select(vec![8u64, 16]),
        d in prop::sample::select(vec![1024u64, 2048]),
    ) {
        let gpu = Gpu::a100_like();
        let mut last = 0.0;
        for n in [512u64, 1024, 2048, 4096] {
            let cfg = AttentionConfig::self_attention(b, h, n, d, 4 * d);
            let t = GpuAttention::unfused(&gpu, &cfg).seconds;
            prop_assert!(t >= last);
            last = t;
        }
    }
}
