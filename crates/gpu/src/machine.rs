//! The GPU machine description.

use flat_tensor::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GPU-class device: streaming multiprocessors with per-SM shared
/// memory, a shared L2, and HBM.
///
/// In the paper's terms (§3.1): shared memory plays the global scratchpad
/// (high bandwidth, tiny capacity), HBM plays off-chip memory, and the SM
/// grid plays the PE array.
///
/// # Example
///
/// ```
/// use flat_gpu::Gpu;
///
/// let gpu = Gpu::a100_like();
/// assert!(gpu.peak_flops() > 1.0e14);
/// assert!(gpu.total_shared_memory() < gpu.l2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gpu {
    /// Device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: u64,
    /// Half-precision MACs per cycle per SM (tensor-core lanes).
    pub macs_per_cycle_per_sm: u64,
    /// Shared memory (scratchpad) per SM.
    pub shared_per_sm: Bytes,
    /// Device-wide L2 cache capacity.
    pub l2: Bytes,
    /// L2 bandwidth, bytes per second.
    pub l2_bytes_per_s: f64,
    /// HBM bandwidth, bytes per second.
    pub hbm_bytes_per_s: f64,
    /// Core clock in hertz.
    pub clock_hz: f64,
}

impl Gpu {
    /// An A100-class device: 108 SMs, 1024 fp16 MACs/cycle/SM (312
    /// TFLOP/s at 1.41 GHz), 192 KiB shared memory per SM, 40 MiB L2 at
    /// ~5 TB/s, 1.9 TB/s HBM.
    #[must_use]
    pub fn a100_like() -> Self {
        Gpu {
            name: "a100-like".to_owned(),
            sms: 108,
            macs_per_cycle_per_sm: 1024,
            shared_per_sm: Bytes::from_kib(192),
            l2: Bytes::from_mib(40),
            l2_bytes_per_s: 5.0e12,
            hbm_bytes_per_s: 1.9e12,
            clock_hz: 1.41e9,
        }
    }

    /// A V100-class device (the cloud-accelerator era the paper compares
    /// against): 80 SMs, 512 MACs/cycle/SM, 96 KiB shared per SM, 6 MiB
    /// L2, 0.9 TB/s HBM.
    #[must_use]
    pub fn v100_like() -> Self {
        Gpu {
            name: "v100-like".to_owned(),
            sms: 80,
            macs_per_cycle_per_sm: 512,
            shared_per_sm: Bytes::from_kib(96),
            l2: Bytes::from_mib(6),
            l2_bytes_per_s: 2.5e12,
            hbm_bytes_per_s: 0.9e12,
            clock_hz: 1.38e9,
        }
    }

    /// Peak half-precision throughput in FLOP/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        2.0 * (self.sms * self.macs_per_cycle_per_sm) as f64 * self.clock_hz
    }

    /// Aggregate shared memory across SMs.
    #[must_use]
    pub fn total_shared_memory(&self) -> Bytes {
        self.shared_per_sm * self.sms
    }

    /// Seconds to move `bytes` over HBM.
    #[must_use]
    pub fn hbm_seconds(&self, bytes: f64) -> f64 {
        bytes / self.hbm_bytes_per_s
    }

    /// Seconds to execute `macs` at peak.
    #[must_use]
    pub fn compute_seconds(&self, macs: f64) -> f64 {
        2.0 * macs / self.peak_flops()
    }
}

impl fmt::Display for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} SMs, {:.0} TFLOP/s fp16, {} shared/SM, {} L2, {:.1} TB/s HBM",
            self.name,
            self.sms,
            self.peak_flops() / 1e12,
            self.shared_per_sm,
            self.l2,
            self.hbm_bytes_per_s / 1e12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_headline_numbers() {
        let g = Gpu::a100_like();
        // ~312 TFLOP/s fp16 dense.
        assert!((g.peak_flops() / 1e12 - 312.0).abs() < 10.0);
        assert_eq!(g.total_shared_memory(), Bytes::from_kib(192 * 108));
    }

    #[test]
    fn newer_device_dominates_older() {
        let (a, v) = (Gpu::a100_like(), Gpu::v100_like());
        assert!(a.peak_flops() > v.peak_flops());
        assert!(a.hbm_bytes_per_s > v.hbm_bytes_per_s);
        assert!(a.l2 > v.l2);
    }

    #[test]
    fn time_helpers_are_consistent() {
        let g = Gpu::a100_like();
        assert!((g.hbm_seconds(1.9e12) - 1.0).abs() < 1e-12);
        let macs = g.peak_flops() / 2.0;
        assert!((g.compute_seconds(macs) - 1.0).abs() < 1e-12);
    }
}
