//! GPU-class machine model — the paper's footnote 5 ("FLAT can be
//! implemented and run over a GPU as well"), made concrete.
//!
//! A GPU maps onto the paper's vocabulary directly: an SM's shared memory
//! is the high-bandwidth, low-capacity on-chip buffer; HBM is the slow
//! off-chip memory; a fused attention kernel (one thread block per FLAT
//! tile) keeps the logit slice in shared memory exactly like FLAT keeps it
//! in the scratchpad; the unfused baseline (`matmul → softmax → matmul` as
//! three kernels) round-trips the `O(N²)` tensor through HBM. This module
//! prices both mappings, which is also the bridge from FLAT to its
//! better-known successor, FlashAttention.
//!
//! # Example
//!
//! ```
//! use flat_gpu::{Gpu, GpuAttention};
//! use flat_workloads::Model;
//!
//! let gpu = Gpu::a100_like();
//! let cfg = Model::bert().config(64, 4096);
//! let fused = GpuAttention::fused(&gpu, &cfg, 64);
//! let unfused = GpuAttention::unfused(&gpu, &cfg);
//! assert!(fused.seconds < unfused.seconds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod machine;

pub use kernel::GpuAttention;
pub use machine::Gpu;
