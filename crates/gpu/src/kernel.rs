//! Fused vs unfused attention mappings on the GPU model.

use crate::Gpu;
use flat_tensor::Bytes;
use flat_workloads::AttentionConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First-order cost of an attention execution on a [`Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuAttention {
    /// End-to-end time in seconds.
    pub seconds: f64,
    /// Time the tensor cores need at peak.
    pub compute_seconds: f64,
    /// Time HBM needs for the execution's traffic.
    pub hbm_seconds: f64,
    /// Time the L2 needs for cache-served re-reads.
    pub l2_seconds: f64,
    /// Total HBM traffic.
    pub hbm_bytes: Bytes,
    /// Fraction of peak FLOP/s achieved.
    pub efficiency: f64,
}

impl GpuAttention {
    /// The unfused baseline: three kernel launches
    /// (`L = Q·Kᵀ`, `softmax`, `A = P·V`), each reading its inputs from
    /// and writing its outputs to HBM — the `O(N²)` intermediate makes
    /// four full HBM passes, exactly the bottleneck the paper describes
    /// on accelerators.
    #[must_use]
    pub fn unfused(gpu: &Gpu, cfg: &AttentionConfig) -> GpuAttention {
        let e = cfg.dtype.size_bytes() as f64;
        let macs = (2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden) as f64;
        let qkv = (cfg.batch * cfg.heads * (cfg.seq_q + 2 * cfg.seq_kv) * cfg.dk()) as f64 * e;
        let o = (cfg.batch * cfg.heads * cfg.seq_q * cfg.dk()) as f64 * e;
        let s = cfg.logit_elements() as f64 * e;

        // Kernel 1: read Q,K; write S. Kernel 2: read+write S.
        // Kernel 3: read S,V; write O.
        let k1 = gpu
            .compute_seconds(macs / 2.0)
            .max(gpu.hbm_seconds(qkv - o + s));
        let k2 = gpu.hbm_seconds(2.0 * s);
        let k3 = gpu
            .compute_seconds(macs / 2.0)
            .max(gpu.hbm_seconds(s + o + o));
        let seconds = k1 + k2 + k3;
        let compute = gpu.compute_seconds(macs);
        GpuAttention {
            seconds,
            compute_seconds: compute,
            hbm_seconds: gpu.hbm_seconds(qkv + o + 4.0 * s),
            l2_seconds: 0.0,
            hbm_bytes: Bytes::new((qkv + o + 4.0 * s) as u64),
            efficiency: compute / seconds,
        }
    }

    /// The fused kernel: one launch, one thread block per
    /// `(batch, head, row-group)` FLAT tile. The logit slice lives in
    /// shared memory (online softmax covers slices wider than it);
    /// K/V re-reads across row groups hit the L2 when a head's K/V
    /// working set fits the per-SM share of it, and HBM otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_tile` is zero.
    #[must_use]
    pub fn fused(gpu: &Gpu, cfg: &AttentionConfig, rows_per_tile: u64) -> GpuAttention {
        assert!(rows_per_tile > 0, "row tile must be positive");
        let e = cfg.dtype.size_bytes() as f64;
        let dk = cfg.dk();
        let macs = (2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden) as f64;
        let compute = gpu.compute_seconds(macs);

        // Compulsory HBM traffic: Q, K, V in once; O out once.
        let qkv = (cfg.batch * cfg.heads * (cfg.seq_q + 2 * cfg.seq_kv) * dk) as f64 * e;
        let o = (cfg.batch * cfg.heads * cfg.seq_q * dk) as f64 * e;

        // Shared-memory feasibility caps the row-block size: the block
        // holds its Q tile, its output accumulator, and a K/V column tile
        // (online softmax relaxes the full-row requirement on a GPU, so
        // the slice itself need not be resident).
        let per_row_bytes = 3.0 * dk as f64 * e;
        let max_rows = (gpu.shared_per_sm.as_f64() / per_row_bytes).floor() as u64;
        let rows = rows_per_tile.min(max_rows.max(1)).min(cfg.seq_q);

        // K/V re-reads: every row group of a head walks the whole K and V
        // (the FlashAttention IO term, Θ(N²·d / rows) per head).
        let row_groups = cfg.seq_q.div_ceil(rows);
        let kv_per_head = (2 * cfg.seq_kv * dk) as f64 * e;
        let rereads =
            (cfg.batch * cfg.heads) as f64 * (row_groups.saturating_sub(1)) as f64 * kv_per_head;
        // The L2 serves the re-reads of whatever heads' K/V it can hold
        // concurrently (one resident head per active SM is the demand).
        let l2_share = gpu.l2.as_f64() / gpu.sms as f64;
        let (l2_bytes, hbm_rereads) = if kv_per_head <= l2_share {
            (rereads, 0.0)
        } else {
            (0.0, rereads)
        };

        let hbm_bytes = qkv + o + hbm_rereads;
        let hbm = gpu.hbm_seconds(hbm_bytes);
        let l2 = l2_bytes / gpu.l2_bytes_per_s;

        // Occupancy: fewer thread blocks than SMs leaves silicon idle.
        let blocks = cfg.batch * cfg.heads * row_groups;
        let occupancy = (blocks as f64 / gpu.sms as f64).min(1.0);

        let seconds = (compute / occupancy).max(hbm).max(l2);
        GpuAttention {
            seconds,
            compute_seconds: compute,
            hbm_seconds: hbm,
            l2_seconds: l2,
            hbm_bytes: Bytes::new(hbm_bytes as u64),
            efficiency: compute / seconds,
        }
    }

    /// An autoregressive decode step with a KV cache (`seq_q = 1`): one
    /// query row attends to `context` cached keys/values. The execution is
    /// irreducibly bound by streaming the cache once — no fusion can beat
    /// that — so the useful number is how close to the HBM roofline the
    /// step runs.
    #[must_use]
    pub fn decode_step(gpu: &Gpu, cfg: &AttentionConfig) -> GpuAttention {
        let e = cfg.dtype.size_bytes() as f64;
        let macs = (2 * cfg.batch * cfg.seq_q * cfg.seq_kv * cfg.hidden) as f64;
        let compute = gpu.compute_seconds(macs);
        // Compulsory: the whole KV cache in, Q and O negligible.
        let kv = (2 * cfg.batch * cfg.heads * cfg.seq_kv * cfg.dk()) as f64 * e;
        let qo = (2 * cfg.batch * cfg.heads * cfg.seq_q * cfg.dk()) as f64 * e;
        let hbm = gpu.hbm_seconds(kv + qo);
        let seconds = compute.max(hbm);
        GpuAttention {
            seconds,
            compute_seconds: compute,
            hbm_seconds: hbm,
            l2_seconds: 0.0,
            hbm_bytes: Bytes::new((kv + qo) as u64),
            efficiency: compute / seconds,
        }
    }

    /// The best fused configuration over a set of candidate row counts
    /// (infeasible ones clamp to what shared memory permits).
    #[must_use]
    pub fn fused_best(gpu: &Gpu, cfg: &AttentionConfig) -> GpuAttention {
        [16u64, 32, 64, 128, 256, 512, 1024]
            .into_iter()
            .map(|r| GpuAttention::fused(gpu, cfg, r.min(cfg.seq_q)))
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite"))
            .expect("candidate set is non-empty")
    }
}

impl fmt::Display for GpuAttention {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms ({:.0}% of peak, HBM {})",
            self.seconds * 1e3,
            self.efficiency * 100.0,
            self.hbm_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_workloads::Model;

    #[test]
    fn fusion_wins_decisively_at_every_length() {
        let gpu = Gpu::a100_like();
        let mut speedups = Vec::new();
        for seq in [1024u64, 4096, 16_384] {
            let cfg = Model::bert().config(64, seq);
            let fused = GpuAttention::fused_best(&gpu, &cfg);
            let unfused = GpuAttention::unfused(&gpu, &cfg);
            let speedup = unfused.seconds / fused.seconds;
            assert!(speedup > 2.0, "N={seq}: {speedup}");
            speedups.push(speedup);
        }
        // The regime lands in FlashAttention's reported 2-8x territory,
        // and the gap saturates rather than collapsing at long N.
        let max = speedups.iter().copied().fold(0.0, f64::max);
        assert!((2.0..12.0).contains(&max), "{max}");
        assert!(*speedups.last().unwrap() > 0.7 * max);
    }

    #[test]
    fn unfused_is_hbm_bound_at_long_seq() {
        let gpu = Gpu::a100_like();
        let cfg = Model::bert().config(64, 16_384);
        let r = GpuAttention::unfused(&gpu, &cfg);
        assert!(r.hbm_seconds > r.compute_seconds);
        assert!(r.efficiency < 0.5);
    }

    #[test]
    fn fused_approaches_peak_at_long_seq() {
        let gpu = Gpu::a100_like();
        let cfg = Model::bert().config(64, 16_384);
        let r = GpuAttention::fused_best(&gpu, &cfg);
        assert!(r.efficiency > 0.6, "efficiency {}", r.efficiency);
    }

    #[test]
    fn fused_moves_far_less_hbm() {
        let gpu = Gpu::a100_like();
        let cfg = Model::bert().config(64, 16_384);
        let fused = GpuAttention::fused_best(&gpu, &cfg);
        let unfused = GpuAttention::unfused(&gpu, &cfg);
        assert!(
            unfused.hbm_bytes.as_f64() > 7.0 * fused.hbm_bytes.as_f64(),
            "{} vs {}",
            unfused.hbm_bytes,
            fused.hbm_bytes
        );
    }

    /// Decode steps are HBM-roofline bound: their arithmetic intensity is
    /// ~1 MAC per cached element, far left of the A100 ridge.
    #[test]
    fn decode_is_memory_bound() {
        let gpu = Gpu::a100_like();
        let cfg = flat_workloads::Model::bert().decode_step(64, 16_384);
        let r = GpuAttention::decode_step(&gpu, cfg.config());
        assert!(r.hbm_seconds > r.compute_seconds);
        assert!(
            r.efficiency < 0.1,
            "decode cannot approach peak: {}",
            r.efficiency
        );
        // But the absolute time is tiny relative to a prefill of the same
        // context.
        let prefill =
            GpuAttention::fused_best(&gpu, &flat_workloads::Model::bert().config(64, 16_384));
        assert!(r.seconds < prefill.seconds / 50.0);
    }

    #[test]
    fn tiny_grids_lose_occupancy() {
        let gpu = Gpu::a100_like();
        // One batch, one head: at most a handful of blocks.
        let cfg = flat_workloads::AttentionConfig::self_attention(1, 1, 512, 512, 2048);
        let r = GpuAttention::fused(&gpu, &cfg, 512);
        assert!(r.efficiency < 0.1, "a single block cannot fill 108 SMs");
    }

    #[test]
    fn older_gpu_benefits_more_from_fusion() {
        // V100 has a worse FLOPs:HBM ratio... actually better; what holds
        // generally is that both devices prefer fusion.
        for gpu in [Gpu::a100_like(), Gpu::v100_like()] {
            let cfg = Model::bert().config(64, 8192);
            let fused = GpuAttention::fused_best(&gpu, &cfg);
            let unfused = GpuAttention::unfused(&gpu, &cfg);
            assert!(fused.seconds < unfused.seconds, "{}", gpu.name);
        }
    }
}
