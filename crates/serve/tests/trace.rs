//! Trace contract suite: the serving engine's telemetry output.
//!
//! Three properties are pinned here, matching the guarantees the
//! `flat-telemetry` layer advertises:
//!
//! * **schema shape** — every exported event carries `ph`/`ts`/`pid`/
//!   `tid`, and every `B` on a lane is closed by a matching `E`, so the
//!   trace loads in Perfetto with no dangling spans;
//! * **determinism** — for a fixed seed the trace document is
//!   byte-identical across runs, chaos or not, because every timestamp
//!   comes from the engine's virtual clock;
//! * **zero overhead when off** — serving through a [`NoopSink`]
//!   produces metrics JSON byte-identical to the untraced entry point.

use flat_arch::Accelerator;
use flat_dist::{Link, Topology};
use flat_serve::{
    serve, serve_dist, serve_dist_traced, serve_traced, serve_with_faults,
    serve_with_faults_traced, DistServeConfig, EngineConfig, FaultPlan, WorkloadSpec,
};
use flat_telemetry::{EventPhase, MemorySink, NoopSink};
use flat_tensor::Bytes;
use flat_workloads::{Model, Task};
use std::collections::HashMap;

fn workload(requests: usize, seed: u64) -> Vec<flat_serve::RequestSpec> {
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, requests, 400.0);
    spec.prompt_mean = 40; // scaled down so the suite stays fast
    spec.output_mean = 6;
    spec.generate(seed).expect("spec is valid")
}

fn config(accel: &Accelerator, model: &Model, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::for_platform(accel, model, seed);
    cfg.kv_budget = Bytes::from_mib(8);
    cfg.max_batch = 6;
    cfg
}

/// Every event has the required Chrome trace-event fields, and spans
/// balance per `(pid, tid)` lane.
#[test]
fn trace_schema_is_well_formed_and_spans_balance() {
    let model = Model::by_name("bert").expect("bert exists");
    let accel = Accelerator::edge();
    let wl = workload(24, 11);
    let cfg = config(&accel, &model, 11);
    let mut sink = MemorySink::new();
    let metrics = serve_traced(&accel, &model, &wl, &cfg, &mut sink).expect("engine terminates");
    assert!(metrics.finished > 0, "some requests must finish");
    assert!(!sink.events.is_empty(), "tracing must record events");

    let mut depth: HashMap<(u32, u64), i64> = HashMap::new();
    for ev in &sink.events {
        let json = ev.to_json();
        for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
        assert!(!ev.cat.is_empty(), "every event carries a category");
        match ev.ph {
            EventPhase::Begin => *depth.entry((ev.pid, ev.tid)).or_default() += 1,
            EventPhase::End => *depth.entry((ev.pid, ev.tid)).or_default() -= 1,
            _ => {}
        }
    }
    for (lane, d) in &depth {
        assert_eq!(*d, 0, "unbalanced B/E on lane {lane:?}");
    }

    // Per-request lifecycle: one "request" span opens and closes per
    // offered request (tid = 1 + id), and each is queued at least once.
    let begins = sink
        .events
        .iter()
        .filter(|e| e.ph == EventPhase::Begin && e.name == "request")
        .count();
    assert_eq!(begins, wl.len(), "one request span per offered request");
    let queued = sink
        .events
        .iter()
        .filter(|e| e.ph == EventPhase::Begin && e.name == "queued")
        .count();
    assert!(queued >= wl.len(), "every request is queued on arrival");

    // The KV counter track samples every tick.
    let kv_samples = sink
        .events
        .iter()
        .filter(|e| e.ph == EventPhase::Counter && e.name == "kv_blocks")
        .count();
    assert_eq!(kv_samples as u64, metrics.ticks, "one KV sample per tick");
}

/// For a fixed seed the exported document is byte-identical across runs,
/// including under fault injection.
#[test]
fn trace_is_byte_deterministic_for_fixed_seed() {
    let model = Model::by_name("bert").expect("bert exists");
    let accel = Accelerator::edge();
    for plan in [None, Some(FaultPlan::chaos(7))] {
        let mut docs = Vec::new();
        for _ in 0..2 {
            let mut wl = workload(24, 42);
            if let Some(p) = &plan {
                p.corrupt_workload(&mut wl);
            }
            let cfg = config(&accel, &model, 42);
            let mut sink = MemorySink::new();
            serve_with_faults_traced(&accel, &model, &wl, &cfg, plan, &mut sink)
                .expect("engine terminates");
            docs.push(sink.to_chrome_trace());
        }
        assert_eq!(
            docs[0],
            docs[1],
            "trace must be byte-identical (chaos: {})",
            plan.is_some()
        );
        assert!(docs[0].contains("\"traceEvents\""));
    }
}

/// Serving through the disabled sink yields metrics byte-identical to
/// the untraced entry points: tracing observes the run, never perturbs
/// it.
#[test]
fn noop_sink_run_matches_untraced_metrics_byte_for_byte() {
    let model = Model::by_name("bert").expect("bert exists");
    let accel = Accelerator::edge();
    let wl = workload(24, 9);
    let cfg = config(&accel, &model, 9);

    let plain = serve(&accel, &model, &wl, &cfg).expect("untraced run");
    let mut noop = NoopSink;
    let traced = serve_traced(&accel, &model, &wl, &cfg, &mut noop).expect("noop-traced run");
    assert_eq!(plain.to_json(), traced.to_json());

    let plan = Some(FaultPlan::chaos(3));
    let mut wl = workload(24, 9);
    plan.as_ref().expect("plan set").corrupt_workload(&mut wl);
    let plain = serve_with_faults(&accel, &model, &wl, &cfg, plan).expect("untraced");
    let mut noop = NoopSink;
    let traced =
        serve_with_faults_traced(&accel, &model, &wl, &cfg, plan, &mut noop).expect("noop-traced");
    assert_eq!(plain.to_json(), traced.to_json());
}

/// Multi-chip serving traces fabric collectives: per-chip lanes carrying
/// `bytes` and `energy_pj` arguments, absent on a 1-chip cluster.
#[test]
fn dist_trace_carries_collective_spans_per_chip() {
    let model = Model::by_name("bert").expect("bert exists");
    let accel = Accelerator::edge();
    let wl = workload(16, 5);
    let cfg = config(&accel, &model, 5);

    for chips in [1usize, 4] {
        let dcfg = DistServeConfig {
            link: Link::edge(),
            ..DistServeConfig::new(chips, Topology::Ring)
        };
        let mut sink = MemorySink::new();
        let traced = serve_dist_traced(&accel, &model, &wl, &cfg, &dcfg, &mut sink)
            .expect("dist engine terminates");
        let coll: Vec<_> = sink
            .events
            .iter()
            .filter(|e| e.cat == "collective")
            .collect();
        if chips == 1 {
            assert!(coll.is_empty(), "1-chip cluster must not emit collectives");
            continue;
        }
        assert!(
            !coll.is_empty(),
            "{chips}-chip cluster must trace collectives"
        );
        for ev in &coll {
            assert!(matches!(ev.ph, EventPhase::Complete { .. }));
            assert!(ev.pid >= 1 && ev.pid as usize <= chips, "chip lane pid");
            let keys: Vec<_> = ev.args.iter().map(|(k, _)| *k).collect();
            assert!(
                keys.contains(&"bytes") && keys.contains(&"energy_pj"),
                "{keys:?}"
            );
        }
        // Tracing the dist run does not change its metrics either.
        let plain = serve_dist(&accel, &model, &wl, &cfg, &dcfg).expect("untraced dist run");
        assert_eq!(plain.serve.to_json(), traced.serve.to_json());
    }
}
