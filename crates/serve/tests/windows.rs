//! Windowed-trajectory bounds: the sampler caps the trajectory at its
//! `MAX_WINDOWS` bound and must flag the collapsed tail window as
//! truncated, so rate analysis (burn-rate windows, anomaly detection)
//! never reads an arbitrary-span tail as one nominal-width sample.

use flat_arch::Accelerator;
use flat_serve::{serve, EngineConfig, WorkloadSpec};
use flat_workloads::{Model, Task};

/// The sampler's trajectory bound (`flat-serve` internal constant,
/// asserted here through observable behavior).
const MAX_WINDOWS: usize = 1 << 17;

#[test]
fn trajectory_truncation_boundary_is_flagged() {
    // A window narrow enough that the run crosses far more than
    // MAX_WINDOWS boundaries: the sampler must stop at the bound and
    // collapse the rest of the run into one final truncated window.
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, 8, 400.0);
    spec.prompt_mean = 40;
    spec.output_mean = 6;
    let wl = spec.generate(0xB0).expect("spec is valid");
    let mut cfg = EngineConfig::for_platform(&accel, &model, 0xB0);
    cfg.window_ms = Some(1e-4);
    let m = serve(&accel, &model, &wl, &cfg).expect("run terminates");
    assert!(
        m.makespan_ms / 1e-4 > MAX_WINDOWS as f64,
        "precondition: the run must cross more boundaries than the bound \
         (makespan {} ms)",
        m.makespan_ms
    );
    assert_eq!(
        m.windows.len(),
        MAX_WINDOWS + 1,
        "bounded trajectory plus one collapsed tail"
    );
    let (tail, nominal) = m.windows.split_last().expect("nonempty");
    assert!(
        nominal.iter().all(|w| !w.truncated),
        "every nominal-width window (including the MAX_WINDOWS-th) stays \
         untruncated"
    );
    assert!(tail.truncated, "the collapsed tail is flagged");
    assert!(
        (tail.end_ms - m.makespan_ms).abs() < 1e-6,
        "the tail closes at end of run"
    );
    // The tail absorbs everything after the bound; the books still
    // balance across the whole trajectory.
    let finished: usize = m.windows.iter().map(|w| w.finished).sum();
    let dropped: usize = m.windows.iter().map(|w| w.dropped).sum();
    assert_eq!(finished, m.finished);
    assert_eq!(dropped, m.dropped);
}

#[test]
fn short_runs_never_flag_truncation() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, 8, 400.0);
    spec.prompt_mean = 40;
    spec.output_mean = 6;
    let wl = spec.generate(0xB1).expect("spec is valid");
    let mut cfg = EngineConfig::for_platform(&accel, &model, 0xB1);
    cfg.window_ms = Some(5.0);
    let m = serve(&accel, &model, &wl, &cfg).expect("run terminates");
    assert!(!m.windows.is_empty());
    assert!(m.windows.iter().all(|w| !w.truncated));
}
