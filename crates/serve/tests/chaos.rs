//! Chaos suite: seeded fault injection against the serving engine.
//!
//! Every scenario asserts the same robustness contract, whatever the
//! faults do:
//!
//! * the engine **terminates** with `Ok` — no panic, no livelock;
//! * **conservation** holds — every offered request is either finished or
//!   dropped, exactly once;
//! * every non-completed request carries a **typed drop reason**, and the
//!   per-reason counters add up;
//! * the metrics **serialize** — NaN-laced latencies are flagged, never
//!   fatal, and no rate is ever `inf`.

use flat_arch::Accelerator;
use flat_serve::{serve_with_faults, EngineConfig, FaultPlan, ServeMetrics, WorkloadSpec};
use flat_tensor::Bytes;
use flat_workloads::{Model, Task};

fn workload(requests: usize, seed: u64, slo_ms: Option<f64>) -> Vec<flat_serve::RequestSpec> {
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, requests, 400.0);
    spec.prompt_mean = 40; // scaled down so the suite stays fast
    spec.output_mean = 6;
    spec.slo_ms = slo_ms;
    spec.generate(seed).expect("spec is valid")
}

/// Runs one faulted scenario and asserts the full robustness contract.
fn run_chaos(name: &str, plan: FaultPlan, slo_ms: Option<f64>, kv_mib: u64) -> ServeMetrics {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut wl = workload(32, plan.seed, slo_ms);
    plan.corrupt_workload(&mut wl);
    let mut cfg = EngineConfig::for_platform(&accel, &model, plan.seed);
    cfg.kv_budget = Bytes::from_mib(kv_mib);
    cfg.max_batch = 6;
    let m = serve_with_faults(&accel, &model, &wl, &cfg, Some(plan))
        .unwrap_or_else(|e| panic!("{name}: engine must terminate cleanly, got {e}"));
    // Conservation: offered = finished + dropped, with drop reasons that
    // add up to the drop count.
    assert_eq!(m.requests, wl.len(), "{name}: offered count");
    assert_eq!(
        m.finished + m.dropped,
        m.requests,
        "{name}: every request finishes or is dropped"
    );
    assert_eq!(
        m.drops.total(),
        m.dropped as u64,
        "{name}: every dropped request carries a typed reason"
    );
    // Rates must never be inf/NaN, whatever the clock did.
    assert!(
        m.decode_tokens_per_s.is_finite(),
        "{name}: throughput finite"
    );
    assert!(m.goodput_tokens_per_s.is_finite(), "{name}: goodput finite");
    assert!(
        m.goodput_tokens_per_s <= m.decode_tokens_per_s + 1e-9,
        "{name}: goodput ≤ throughput"
    );
    // The report must serialize whatever the samples look like.
    let json = m.to_json();
    assert!(json.contains("\"drops\""), "{name}: metrics serialize");
    m
}

#[test]
fn chaos_pool_shrinks_mid_run() {
    let plan = FaultPlan {
        shrink_pool_at_tick: Some(4),
        shrink_pool_frac: 0.8,
        ..FaultPlan::quiet(0xA0)
    };
    let m = run_chaos("pool-shrink", plan, None, 8);
    // Capacity loss must show as pressure, not lost requests: whatever
    // still fits the shrunken pool finishes, the rest drops Infeasible.
    assert_eq!(m.drops.deadline + m.drops.corrupt, 0);
    assert!(m.finished > 0, "a shrunken pool still serves what fits");
}

#[test]
fn chaos_pool_shrinks_to_near_nothing() {
    let plan = FaultPlan {
        shrink_pool_at_tick: Some(2),
        shrink_pool_frac: 1.0,
        ..FaultPlan::quiet(0xA1)
    };
    let m = run_chaos("pool-vanish", plan, None, 8);
    assert!(
        m.dropped > 0,
        "a one-block pool cannot hold multi-block requests"
    );
    assert!(m.drops.infeasible > 0);
}

#[test]
fn chaos_corrupt_specs() {
    let plan = FaultPlan {
        corrupt_spec_per_mille: 400,
        ..FaultPlan::quiet(0xB0)
    };
    let m = run_chaos("corrupt-specs", plan, None, 64);
    assert!(
        m.drops.corrupt + m.drops.infeasible > 0,
        "at 400‰ corruption something must be shed"
    );
    assert!(m.finished > 0, "well-formed requests still get served");
}

#[test]
fn chaos_nan_latencies() {
    let plan = FaultPlan {
        nan_latency_per_mille: 500,
        ..FaultPlan::quiet(0xC0)
    };
    let m = run_chaos("nan-latency", plan, None, 64);
    assert_eq!(
        m.finished, m.requests,
        "latency corruption never loses requests"
    );
    assert!(
        m.ttft.nonfinite + m.e2e.nonfinite > 0,
        "at 500‰ some percentile samples must be flagged non-finite"
    );
    assert!(m.e2e.p99_ms.is_finite());
}

#[test]
fn chaos_clock_skew() {
    let plan = FaultPlan {
        clock_skew: Some(8.0),
        ..FaultPlan::quiet(0xD0)
    };
    let m = run_chaos("clock-skew", plan, None, 64);
    assert_eq!(
        m.finished, m.requests,
        "a jittery clock never loses requests"
    );
    assert!(m.makespan_ms.is_finite() && m.makespan_ms >= 0.0);
}

#[test]
fn chaos_deadlines_under_pressure() {
    // Tight SLO against a tight pool: shedding must be graceful and
    // goodput must only count requests that made their deadline.
    let plan = FaultPlan::quiet(0xE0);
    let m = run_chaos("deadline-pressure", plan, Some(2.0), 4);
    assert!(m.drops.deadline > 0, "a 2 ms SLO under pressure must shed");
    assert!(m.finished > 0, "early arrivals still make it");
}

#[test]
fn chaos_everything_at_once() {
    for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
        let m = run_chaos("kitchen-sink", FaultPlan::chaos(seed), Some(50.0), 8);
        // Under full chaos the only hard guarantees are the contract
        // run_chaos already asserted; spot-check the books balance.
        assert_eq!(
            m.drops.infeasible + m.drops.deadline + m.drops.corrupt,
            m.dropped as u64,
            "seed {seed}"
        );
    }
}

#[test]
fn chaos_faulted_runs_are_deterministic_in_seed() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let plan = FaultPlan::chaos(0x5EED);
    let mut wl = workload(24, plan.seed, Some(40.0));
    plan.corrupt_workload(&mut wl);
    let mut cfg = EngineConfig::for_platform(&accel, &model, plan.seed);
    cfg.kv_budget = Bytes::from_mib(8);
    let a = serve_with_faults(&accel, &model, &wl, &cfg, Some(plan)).unwrap();
    let b = serve_with_faults(&accel, &model, &wl, &cfg, Some(plan)).unwrap();
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "chaos is seeded: same plan, same run"
    );
}

#[test]
fn chaos_distributed_conserves_requests() {
    // The conservation audit on the *distributed* path: under full
    // chaos, at several cluster sizes, every offered request must be
    // finished or dropped exactly once, with per-reason counters that
    // add up — same contract the single-chip suite holds.
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    for chips in [1usize, 2, 4] {
        for seed in [0x11u64, 0x22, 0x33] {
            let plan = FaultPlan::chaos(seed);
            let mut wl = workload(32, seed, Some(50.0));
            plan.corrupt_workload(&mut wl);
            let mut cfg = EngineConfig::for_platform(&accel, &model, seed);
            cfg.kv_budget = Bytes::from_mib(8);
            cfg.max_batch = 6;
            let dist = flat_serve::DistServeConfig::new(chips, flat_dist::Topology::Ring);
            let m =
                flat_serve::serve_dist_with_faults(&accel, &model, &wl, &cfg, &dist, Some(plan))
                    .unwrap_or_else(|e| {
                        panic!("chips={chips} seed={seed}: must terminate, got {e}")
                    });
            let s = &m.serve;
            assert_eq!(s.requests, wl.len(), "chips={chips} seed={seed}: offered");
            assert_eq!(
                s.finished + s.dropped,
                s.requests,
                "chips={chips} seed={seed}: finished + dropped == offered"
            );
            assert_eq!(
                s.drops.total(),
                s.dropped as u64,
                "chips={chips} seed={seed}: reasons cover every drop"
            );
            assert_eq!(
                s.drops.infeasible + s.drops.deadline + s.drops.corrupt,
                s.drops.total(),
                "chips={chips} seed={seed}: no unaccounted reason"
            );
            // Per-tenant books must agree with the global books.
            let t_fin: usize = s.tenants.iter().map(|t| t.finished).sum();
            let t_drop: usize = s.tenants.iter().map(|t| t.dropped).sum();
            assert_eq!(t_fin, s.finished, "chips={chips} seed={seed}");
            assert_eq!(t_drop, s.dropped, "chips={chips} seed={seed}");
        }
    }
}

#[test]
fn chaos_distributed_elastic_conserves_requests() {
    // Chaos plus mid-run resizes: scale-down confiscation preempts and
    // re-queues, but must never lose or double-count a request.
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    for seed in [0x44u64, 0x55] {
        let plan = FaultPlan::chaos(seed);
        let mut wl = workload(32, seed, Some(50.0));
        plan.corrupt_workload(&mut wl);
        let mut cfg = EngineConfig::for_platform(&accel, &model, seed);
        cfg.kv_budget = Bytes::from_mib(8);
        cfg.max_batch = 6;
        cfg.window_ms = Some(5.0);
        let dist = flat_serve::DistServeConfig::new(2, flat_dist::Topology::Ring);
        let scale = flat_serve::ScalePlan::new(&[(2.0, 4), (20.0, 1)]);
        let mut sink = flat_telemetry::NoopSink;
        let m = flat_serve::serve_dist_elastic(
            &accel,
            &model,
            &wl,
            &cfg,
            &dist,
            &scale,
            Some(plan),
            &mut sink,
        )
        .unwrap_or_else(|e| panic!("seed={seed}: must terminate, got {e}"));
        let s = &m.serve;
        assert_eq!(s.finished + s.dropped, s.requests, "seed={seed}");
        assert_eq!(s.drops.total(), s.dropped as u64, "seed={seed}");
        let b = flat_serve::serve_dist_elastic(
            &accel,
            &model,
            &wl,
            &cfg,
            &dist,
            &scale,
            Some(plan),
            &mut sink,
        )
        .unwrap();
        assert_eq!(m.to_json(), b.to_json(), "seed={seed}: deterministic");
    }
}

#[test]
fn tied_arrivals_and_deadlines_break_deterministically() {
    // Several requests with *identical* arrival instants and deadlines:
    // admission order and preemption-victim choice must fall back to
    // stable tie-breaks (tenant, then id) — never map/hash order — so
    // the same seed always produces the same run.
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let wl: Vec<flat_serve::RequestSpec> = (0..8)
        .map(|id| {
            let mut r = flat_serve::RequestSpec::new(id, 0.0, 40, 8);
            r.deadline_ms = Some(60.0);
            r.tenant = (id % 2) as u32;
            r
        })
        .collect();
    let mut cfg = EngineConfig::for_platform(&accel, &model, 7);
    // Tight enough that admission is rationed and eviction happens, so
    // the tie-break actually decides who runs and who is preempted.
    cfg.kv_budget = Bytes::from_mib(4);
    cfg.max_batch = 3;
    let a = flat_serve::serve(&accel, &model, &wl, &cfg).unwrap();
    let b = flat_serve::serve(&accel, &model, &wl, &cfg).unwrap();
    assert_eq!(a.to_json(), b.to_json(), "tied requests, stable order");
    assert_eq!(a.finished + a.dropped, a.requests);
    // The same stream reversed must converge to the same books: the
    // scheduler keys on (arrival, tenant, id), not on input position.
    let mut rev = wl.clone();
    rev.reverse();
    let c = flat_serve::serve(&accel, &model, &rev, &cfg).unwrap();
    assert_eq!(
        a.to_json(),
        c.to_json(),
        "input order must not leak into tie-breaking"
    );
}

#[test]
fn faults_disabled_matches_plain_serve() {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let wl = workload(16, 9, None);
    let cfg = EngineConfig::for_platform(&accel, &model, 9);
    let plain = flat_serve::serve(&accel, &model, &wl, &cfg).unwrap();
    let quiet = serve_with_faults(&accel, &model, &wl, &cfg, Some(FaultPlan::quiet(123))).unwrap();
    let none = serve_with_faults(&accel, &model, &wl, &cfg, None).unwrap();
    assert_eq!(plain.to_json(), none.to_json());
    assert_eq!(
        plain.to_json(),
        quiet.to_json(),
        "a quiet plan must not perturb the run"
    );
}
