//! Prefix-dedup contract suite.
//!
//! The copy-on-write KV pool is a *capacity* optimization and nothing
//! else: with enough KV budget that the scheduler never feels pressure,
//! a dedup-on run must be indistinguishable from a dedup-off run of the
//! same workload and seed — token-identical outputs (the decode
//! checksum), identical per-request latency percentiles, identical
//! admission order and tick costs. What dedup IS allowed to change is
//! physical block usage, and under pressure that freed capacity may buy
//! more finished requests. Both sides of the contract are pinned here.

use flat_arch::Accelerator;
use flat_serve::{serve, EngineConfig, ServeMetrics, WorkloadSpec};
use flat_tensor::Bytes;
use flat_workloads::{Model, Task};

/// A workload where many concurrent requests share a long prompt
/// prefix: `requests` arrivals at `rate` req/s, `prefix` shared tokens
/// out of a `prompt`-token prompt.
fn shared_prefix_workload(
    requests: usize,
    rate: f64,
    prompt: usize,
    prefix: usize,
    seed: u64,
) -> Vec<flat_serve::RequestSpec> {
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, requests, rate);
    spec.prompt_mean = prompt;
    spec.output_mean = 4;
    spec.prefix_template = Some(0xCAFE);
    spec.prefix_tokens = prefix;
    spec.generate(seed).expect("spec is valid")
}

fn run(workload: &[flat_serve::RequestSpec], dedup: bool, kv_mib: u64, seed: u64) -> ServeMetrics {
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut cfg = EngineConfig::for_platform(&accel, &model, seed);
    cfg.kv_budget = Bytes::from_mib(kv_mib);
    cfg.dedup = dedup;
    serve(&accel, &model, workload, &cfg).expect("engine terminates")
}

/// Asserts the two runs agree on everything the user can observe per
/// request; only the KV-pool accounting is allowed to differ.
fn assert_equivalent(on: &ServeMetrics, off: &ServeMetrics) {
    assert_eq!(on.checksum, off.checksum, "token-identical outputs");
    assert_eq!(on.finished, off.finished);
    assert_eq!(on.dropped, off.dropped);
    assert_eq!(on.drops.total(), off.drops.total());
    assert_eq!(on.ticks, off.ticks, "identical tick schedule");
    assert_eq!(on.preemptions, off.preemptions);
    assert_eq!(on.makespan_ms, off.makespan_ms, "identical virtual clock");
    for (name, a, b) in [
        ("ttft", &on.ttft, &off.ttft),
        ("tpot", &on.tpot, &off.tpot),
        ("e2e", &on.e2e, &off.e2e),
    ] {
        assert_eq!(a.p50_ms, b.p50_ms, "{name} p50");
        assert_eq!(a.p95_ms, b.p95_ms, "{name} p95");
        assert_eq!(a.p99_ms, b.p99_ms, "{name} p99");
        assert_eq!(a.max_ms, b.max_ms, "{name} max");
    }
    let (mut ja, mut jb) = (
        serde_json::from_str::<serde_json::Value>(&on.to_json()).unwrap(),
        serde_json::from_str::<serde_json::Value>(&off.to_json()).unwrap(),
    );
    // The KV-pool stats are the one legitimate difference.
    ja["kv"] = serde_json::Value::Null;
    jb["kv"] = serde_json::Value::Null;
    assert_eq!(ja, jb, "all non-KV metrics identical");
}

#[test]
fn dedup_is_token_identical_with_ample_capacity() {
    // 32 concurrent-ish requests sharing a 64-token prefix; the budget
    // is ample so admission never backpressures and the runs must match
    // on every observable except pool accounting.
    let wl = shared_prefix_workload(32, 2000.0, 96, 64, 0xD1);
    let on = run(&wl, true, 256, 0xD1);
    let off = run(&wl, false, 256, 0xD1);
    assert_equivalent(&on, &off);
    // And dedup must have actually engaged, sharing physical blocks.
    assert!(on.kv.dedup_hits > 0, "shared prefixes were deduped");
    assert_eq!(off.kv.dedup_hits, 0, "dedup-off never dedups");
    assert!(
        on.kv.peak_occupancy < off.kv.peak_occupancy,
        "dedup peaks lower: {} vs {}",
        on.kv.peak_occupancy,
        off.kv.peak_occupancy
    );
    assert!(
        on.kv.peak_logical_blocks as f64 * 0.6 >= on.kv.peak_occupancy * on.kv.total_blocks as f64,
        "a 2/3-shared prompt must cut physical blocks well below logical"
    );
}

#[test]
fn dedup_equivalence_holds_across_seeds_and_shapes() {
    for (seed, requests, prompt, prefix) in [
        (1u64, 8usize, 40usize, 32usize),
        (2, 16, 64, 48),
        (3, 24, 80, 16),
        (4, 12, 33, 33), // prefix == prompt: fully shared
        (5, 10, 48, 0),  // no shared prefix: dedup is a no-op
    ] {
        let wl = shared_prefix_workload(requests, 1000.0, prompt, prefix, seed);
        let on = run(&wl, true, 256, seed);
        let off = run(&wl, false, 256, seed);
        assert_equivalent(&on, &off);
    }
}

#[test]
fn dedup_buys_capacity_under_kv_pressure() {
    // A tight pool against heavy prefix sharing: dedup-on must either
    // finish strictly more requests or, if both finish everything, use
    // at most half the physical blocks at peak.
    let wl = shared_prefix_workload(32, 4000.0, 112, 96, 0xCA);
    let on = run(&wl, true, 24, 0xCA);
    let off = run(&wl, false, 24, 0xCA);
    assert!(on.finished >= off.finished, "dedup never serves less");
    assert!(
        on.preemptions < off.preemptions || on.makespan_ms < off.makespan_ms,
        "freed capacity must show up as less thrash or a shorter run: \
         on ({} preempt, {:.1} ms) vs off ({} preempt, {:.1} ms)",
        on.preemptions,
        on.makespan_ms,
        off.preemptions,
        off.makespan_ms
    );
    // The headline capacity claim, measured without the 1.0 saturation
    // ceiling: with ample budget the same workload peaks at ≤ half the
    // physical blocks when 96 of 112 prompt tokens are shared.
    let on_ample = run(&wl, true, 256, 0xCA);
    let off_ample = run(&wl, false, 256, 0xCA);
    let physical = |m: &ServeMetrics| m.kv.peak_occupancy * m.kv.total_blocks as f64;
    assert!(
        physical(&on_ample) * 2.0 <= physical(&off_ample),
        "≥2x fewer physical blocks per request: {} vs {}",
        physical(&on_ample),
        physical(&off_ample)
    );
}

#[test]
fn preempting_a_sharer_never_corrupts_survivors() {
    // Tight pool + long outputs force preempt-by-recompute while prefix
    // blocks are shared. Evicting one sharer must not free blocks the
    // survivors still map: the run terminates, conserves requests, and
    // stays deterministic.
    let model = Model::by_name("bert").unwrap();
    let accel = Accelerator::edge();
    let mut spec = WorkloadSpec::from_task(Task::ShortNlp, 24, 3000.0);
    spec.prompt_mean = 64;
    spec.output_mean = 24;
    spec.prefix_template = Some(0xBEEF);
    spec.prefix_tokens = 48;
    let wl = spec.generate(0xEE).unwrap();
    let mut cfg = EngineConfig::for_platform(&accel, &model, 0xEE);
    cfg.kv_budget = Bytes::from_mib(8);
    cfg.max_batch = 8;
    cfg.dedup = true;
    let m = serve(&accel, &model, &wl, &cfg).expect("terminates under pressure");
    assert!(m.preemptions > 0, "the pool must be tight enough to evict");
    assert!(m.kv.dedup_hits > 0, "prefixes were shared when evicting");
    assert_eq!(m.finished + m.dropped, m.requests, "conservation");
    let again = serve(&accel, &model, &wl, &cfg).unwrap();
    assert_eq!(m.to_json(), again.to_json(), "deterministic under churn");
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Randomized equivalence: any prefix-sharing workload served
        /// with ample KV budget produces byte-identical non-KV metrics
        /// with dedup on and off.
        #[test]
        fn dedup_never_changes_tokens(
            seed in 0u64..512,
            requests in 4usize..14,
            prompt in 8usize..48,
            prefix_frac in 0usize..=4,
        ) {
            let prefix = prompt * prefix_frac / 4;
            let wl = shared_prefix_workload(requests, 1500.0, prompt, prefix, seed);
            let on = run(&wl, true, 128, seed);
            let off = run(&wl, false, 128, seed);
            prop_assert_eq!(on.checksum, off.checksum);
            prop_assert_eq!(on.finished, off.finished);
            prop_assert_eq!(on.ticks, off.ticks);
            prop_assert_eq!(on.makespan_ms, off.makespan_ms);
            prop_assert_eq!(on.e2e.p99_ms, off.e2e.p99_ms);
        }
    }
}
