//! `flat-serve` — a continuous-batching autoregressive inference runtime
//! with a paged KV-cache, built on the `flat-kernels` streaming numerics.
//!
//! The repo below this crate prices and executes *single* attention
//! workloads; serving heavy traffic is a different shape of problem: a
//! stream of requests, each carrying a prompt and wanting a generated
//! continuation, competing for one accelerator and one pool of KV memory.
//! This crate provides the runtime layer:
//!
//! * [`KvPool`] / [`KvLayout`] — a paged KV-cache (fixed-size token
//!   blocks, free list, per-request [`BlockTable`]s) with capacity
//!   accounted against the modeled memory hierarchy in `flat-arch`;
//! * [`serve`] / [`EngineConfig`] — the continuous-batching engine:
//!   iteration-level scheduling that mixes prefill chunks and decode
//!   steps in every tick, weighted-fair multi-tenant admission with
//!   backpressure, priority-aware preempt-by-recompute eviction under KV
//!   pressure, and optional copy-on-write prefix dedup
//!   ([`EngineConfig::dedup`]) that shares identical prompt-prefix KV
//!   blocks across requests, executing each decode token through
//!   [`flat_kernels::decode_attention`];
//! * [`ServeError`] / [`DropReason`] — the robustness layer: typed errors
//!   instead of panics, admission-time rejection of provably unservable
//!   requests, and deadline (SLO) shedding with per-reason drop counters;
//! * [`FaultPlan`] / [`serve_with_faults`] — seeded fault injection
//!   (mid-run KV-pool shrinkage, corrupted specs, NaN latencies, clock
//!   skew) backing the chaos test suite;
//! * [`WorkloadSpec`] — synthetic Poisson traffic with prompt/output
//!   lengths drawn from the paper's long-sequence `Task` presets, plus an
//!   optional per-request SLO;
//! * [`ServeMetrics`] — per-request TTFT/TPOT/E2E percentiles,
//!   throughput *and* goodput, drop-reason counters, and KV-pool
//!   occupancy, serialized to JSON for the bench snapshots;
//! * [`serve_dist`] / [`DistServeConfig`] — the same engine on a
//!   multi-accelerator cluster: pooled KV capacity striped across
//!   shards, tensor-parallel tick pricing, and `flat-dist` collective
//!   time paid on the virtual clock, reported via
//!   [`DistServeMetrics`];
//! * [`serve_traced`] / [`serve_dist_traced`] — the observability layer:
//!   every run can stream per-request lifecycle spans (queued → prefill
//!   → decode → finished/dropped/preempted), KV/queue/scheduler counter
//!   tracks, and per-chip collective slices into a
//!   [`flat_telemetry::TraceSink`], stamped on the deterministic virtual
//!   clock so fixed seeds give byte-identical Perfetto traces.
//!
//! # Example
//!
//! ```
//! use flat_arch::Accelerator;
//! use flat_serve::{serve, EngineConfig, WorkloadSpec};
//! use flat_workloads::{Model, Task};
//!
//! let model = Model::by_name("bert").unwrap();
//! let accel = Accelerator::edge();
//! let mut spec = WorkloadSpec::from_task(Task::ShortNlp, 8, 200.0);
//! spec.prompt_mean = 32; // keep the doctest fast
//! spec.output_mean = 4;
//! let workload = spec.generate(42).unwrap();
//! let cfg = EngineConfig::for_platform(&accel, &model, 42);
//! let metrics = serve(&accel, &model, &workload, &cfg).unwrap();
//! assert_eq!(metrics.finished, 8);
//! assert_eq!(metrics.dropped, 0);
//! assert!(metrics.ttft.p50_ms > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Robustness contract: non-test code in this crate must not carry panic
// paths. The clippy CI step fails on any violation.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod dist;
mod engine;
mod error;
mod faults;
mod kv;
mod metrics;
mod request;
mod workload;

pub use dist::{
    serve_dist, serve_dist_elastic, serve_dist_traced, serve_dist_with_faults, DistServeConfig,
    DistServeMetrics, ScaleEvent, ScaleEventRecord, ScalePlan,
};
pub use engine::{serve, serve_traced, serve_with_faults, serve_with_faults_traced, EngineConfig};
pub use error::{DropReason, ServeError};
pub use faults::{FaultInjector, FaultPlan};
pub use flat_kernels::ComputePrecision;
pub use kv::{BlockTable, KvLayout, KvPool};
pub use metrics::{
    DropCounts, KvPoolStats, Percentiles, ServeMetrics, TenantMetrics, WindowSample,
};
pub use request::{Phase, Request, RequestSpec};
pub use workload::{merge_streams, task_by_name, WorkloadSpec};
