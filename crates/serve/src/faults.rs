//! Seeded fault injection for the serving engine: a chaos harness that
//! perturbs the KV pool, the workload, the latency stamps, and the
//! virtual clock, deterministically in a seed.
//!
//! The point is falsifiable robustness: under any [`FaultPlan`] the
//! engine must still terminate with every request either finished or
//! dropped with a typed [`DropReason`](crate::DropReason) — no panics, no
//! livelock, no silently lost work. The chaos test suite runs the full
//! plan matrix over many seeds and asserts exactly that.
//!
//! All hooks are no-ops when [`serve`](crate::serve) is called without a
//! plan, so fault-free runs stay byte-identical to the unhardened engine.

use crate::kv::KvPool;
use crate::request::RequestSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to break, and how hard. All probabilities are per-mille so the
/// plan stays `Copy` and trivially serializable into test names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG stream (independent of the
    /// engine's numeric-plane seed).
    pub seed: u64,
    /// Tick at which the KV pool starts losing capacity, if any.
    pub shrink_pool_at_tick: Option<u64>,
    /// Fraction of the pool's blocks to confiscate once shrinking starts
    /// (taken from the free list over subsequent ticks, never from live
    /// requests).
    pub shrink_pool_frac: f64,
    /// Per-mille probability that [`corrupt_workload`](Self::corrupt_workload)
    /// mangles a given request spec.
    pub corrupt_spec_per_mille: u16,
    /// Per-mille probability that a finished request's latency stamps are
    /// replaced with NaN — the non-finite-sample hazard the metrics layer
    /// must absorb.
    pub nan_latency_per_mille: u16,
    /// Multiplicative jitter on every tick's duration: each tick's cost
    /// is scaled by a random factor in `[1/skew, skew]`, and occasionally
    /// by exactly zero (an "instantaneous" tick, the division-by-zero
    /// hazard). `None` leaves the clock honest.
    pub clock_skew: Option<f64>,
}

impl FaultPlan {
    /// A plan with every fault armed — the chaos suite's default.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            shrink_pool_at_tick: Some(8),
            shrink_pool_frac: 0.75,
            corrupt_spec_per_mille: 150,
            nan_latency_per_mille: 200,
            clock_skew: Some(4.0),
        }
    }

    /// A plan with every fault disarmed (useful as a base to switch
    /// single faults on).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            shrink_pool_at_tick: None,
            shrink_pool_frac: 0.0,
            corrupt_spec_per_mille: 0,
            nan_latency_per_mille: 0,
            clock_skew: None,
        }
    }

    /// Mangles request specs in place, deterministically in the plan
    /// seed: non-finite arrivals, zero prompt/output lengths, and
    /// prompts far beyond any pool — every malformation the engine's
    /// admission layer claims to shed.
    pub fn corrupt_workload(&self, specs: &mut [RequestSpec]) {
        if self.corrupt_spec_per_mille == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0C04_40F7);
        for spec in specs.iter_mut() {
            if !per_mille(&mut rng, self.corrupt_spec_per_mille) {
                continue;
            }
            match rng.gen_range(0u32..4) {
                0 => spec.arrival_ms = f64::NAN,
                1 => spec.prompt_len = 0,
                2 => spec.output_len = 0,
                // Vastly oversized: provably unservable by any pool the
                // accelerator model can budget.
                _ => spec.prompt_len = 1 << 40,
            }
        }
    }
}

/// The live injector: the plan plus its RNG stream and the confiscation
/// quota still outstanding.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// Blocks still to confiscate once the shrink tick passes (free
    /// blocks may be scarce in any one tick, so the quota drains slowly).
    pending_confiscation: usize,
}

impl FaultInjector {
    /// Arms an injector against a pool of `total_blocks`.
    #[must_use]
    pub fn new(plan: FaultPlan, total_blocks: usize) -> Self {
        let quota = if plan.shrink_pool_at_tick.is_some() {
            (total_blocks as f64 * plan.shrink_pool_frac.clamp(0.0, 1.0)) as usize
        } else {
            0
        };
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(plan.seed ^ 0xFA_17),
            pending_confiscation: quota,
        }
    }

    /// Per-tick hook: past the shrink tick, keeps confiscating free
    /// blocks until the quota is met.
    pub fn on_tick(&mut self, tick: u64, pool: &mut KvPool) {
        if self.pending_confiscation == 0 {
            return;
        }
        if self.plan.shrink_pool_at_tick.is_some_and(|at| tick >= at) {
            self.pending_confiscation -= pool.confiscate(self.pending_confiscation);
        }
    }

    /// Skews one tick's duration: a multiplicative factor in
    /// `[1/skew, skew]`, or exactly `0.0` for one tick in 32 (the
    /// instantaneous-tick hazard). `1.0` when the clock fault is off.
    pub fn skew_factor(&mut self) -> f64 {
        match self.plan.clock_skew {
            None => 1.0,
            Some(skew) => {
                let skew = skew.abs().max(1.0);
                if self.rng.gen_range(0u32..32) == 0 {
                    0.0
                } else {
                    let u: f64 = self.rng.gen();
                    // log-uniform in [1/skew, skew]
                    skew.powf(2.0 * u - 1.0)
                }
            }
        }
    }

    /// Corrupts a latency stamp to NaN with the planned probability.
    pub fn latency(&mut self, stamp_ms: f64) -> f64 {
        if per_mille(&mut self.rng, self.plan.nan_latency_per_mille) {
            f64::NAN
        } else {
            stamp_ms
        }
    }
}

/// One seeded Bernoulli draw at `p`‰.
fn per_mille(rng: &mut StdRng, p: u16) -> bool {
    p > 0 && rng.gen_range(0u32..1000) < u32::from(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::BlockTable;

    #[test]
    fn corruption_is_deterministic_and_bounded() {
        let plan = FaultPlan {
            corrupt_spec_per_mille: 500,
            ..FaultPlan::quiet(9)
        };
        let base: Vec<RequestSpec> = (0..64)
            .map(|id| RequestSpec::new(id, id as f64, 10, 5))
            .collect();
        let (mut a, mut b) = (base.clone(), base.clone());
        plan.corrupt_workload(&mut a);
        plan.corrupt_workload(&mut b);
        // Debug-compare: PartialEq would reject identical NaN arrivals.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "corruption must be reproducible"
        );
        let mangled = a
            .iter()
            .filter(|s| !s.is_well_formed() || s.prompt_len >= 1 << 40)
            .count();
        assert!(mangled > 0, "at 500‰ some specs must be mangled");
        assert!(mangled < 64, "and some must survive");
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let plan = FaultPlan::quiet(1);
        let base: Vec<RequestSpec> = (0..16)
            .map(|id| RequestSpec::new(id, id as f64, 10, 5))
            .collect();
        let mut specs = base.clone();
        plan.corrupt_workload(&mut specs);
        assert_eq!(specs, base);
        let mut inj = FaultInjector::new(plan, 100);
        let mut pool = KvPool::new(4, 2, 1);
        inj.on_tick(1000, &mut pool);
        assert_eq!(pool.total_blocks(), 4);
        assert_eq!(inj.skew_factor(), 1.0);
        assert_eq!(inj.latency(3.5), 3.5);
    }

    #[test]
    fn shrink_quota_drains_as_blocks_free_up() {
        let plan = FaultPlan {
            shrink_pool_at_tick: Some(2),
            shrink_pool_frac: 0.5,
            ..FaultPlan::quiet(3)
        };
        let mut pool = KvPool::new(8, 2, 1);
        let mut inj = FaultInjector::new(plan, pool.total_blocks());
        // All blocks live: nothing to confiscate yet.
        let mut t = BlockTable::new();
        for _ in 0..16 {
            assert!(pool.try_append(&mut t, &[0.0], &[0.0]));
        }
        inj.on_tick(5, &mut pool);
        assert_eq!(pool.total_blocks(), 8);
        // Release frees capacity; the quota (4 blocks) drains.
        pool.release(&mut t);
        inj.on_tick(6, &mut pool);
        assert_eq!(pool.total_blocks(), 4);
        // Quota met: no further shrinkage.
        inj.on_tick(7, &mut pool);
        assert_eq!(pool.total_blocks(), 4);
    }

    #[test]
    fn skew_factors_stay_in_band() {
        let plan = FaultPlan {
            clock_skew: Some(3.0),
            ..FaultPlan::quiet(11)
        };
        let mut inj = FaultInjector::new(plan, 1);
        let mut zeros = 0;
        for _ in 0..2000 {
            let f = inj.skew_factor();
            assert!(
                f == 0.0 || (1.0 / 3.0 - 1e-9..=3.0 + 1e-9).contains(&f),
                "factor {f}"
            );
            if f == 0.0 {
                zeros += 1;
            }
        }
        assert!(zeros > 0, "instantaneous ticks must occur");
    }

    #[test]
    fn nan_latency_fires_at_roughly_plan_rate() {
        let plan = FaultPlan {
            nan_latency_per_mille: 250,
            ..FaultPlan::quiet(13)
        };
        let mut inj = FaultInjector::new(plan, 1);
        let nans = (0..4000).filter(|_| inj.latency(1.0).is_nan()).count();
        assert!(
            (500..1500).contains(&nans),
            "expected ≈1000 NaNs, got {nans}"
        );
    }
}
