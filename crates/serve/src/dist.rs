//! Distributed serving: the continuous-batching engine on a
//! multi-accelerator cluster.
//!
//! [`serve_dist`] runs the same iteration-level scheduler as [`crate::serve`]
//! against `chips` copies of the accelerator joined by a
//! [`flat_dist::Fabric`]:
//!
//! * **Capacity scales out** — every chip contributes its KV budget, so
//!   the paged pool holds `chips ×` the single-chip block count, with
//!   pages striped round-robin across shards (the per-shard occupancy
//!   the metrics report follows that striping).
//! * **Compute scales out** — tensor-parallel execution under the
//!   configured [`Partition`] divides each tick's MACs and weight/KV
//!   streaming across chips, so the accounting plane prices ticks
//!   against `chips ×` the FLOPs and off-chip bandwidth.
//! * **Collectives are paid on the virtual clock** — every scheduled
//!   token owes its partition's per-token collective payload; each tick
//!   batches those payloads into one collective round per model layer
//!   and adds the fabric time (α amortizes across the batch, β does
//!   not) to the tick's duration. The accumulated fabric-busy time and
//!   payload bytes surface in [`DistServeMetrics`].
//!
//! A 1-chip cluster is an exact identity with the single-chip engine:
//! the fabric prices every collective at zero and the scaling factors
//! are 1, so the metrics JSON matches [`crate::serve`] field for field —
//! a test pins this.

use crate::engine::{run_dist_engine, EngineConfig};
use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::request::RequestSpec;
use flat_arch::Accelerator;
use flat_dist::{CollectiveAlgo, Fabric, Link, Partition, Topology};
use flat_telemetry::TraceSink;
use flat_workloads::{AttentionConfig, Model};
use serde::Serialize;

/// Cluster knobs for [`serve_dist`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistServeConfig {
    /// Accelerators in the cluster.
    pub chips: usize,
    /// How they are wired.
    pub topology: Topology,
    /// Per-link cost parameters.
    pub link: Link,
    /// Sharding strategy; [`Partition::KvShard`] is the serving-native
    /// choice (decode against a striped cache).
    pub partition: Partition,
    /// Collective schedule priced on the fabric.
    pub algo: CollectiveAlgo,
    /// Overlap collective rounds with the tick's compute: when set, a
    /// tick pays `max(compute, collective)` instead of their sum, and
    /// only the uncovered remainder shows up as exposed fabric time.
    pub overlap: bool,
}

impl DistServeConfig {
    /// A `chips`-wide cluster on cloud-class links, KV-shard partition,
    /// ring collectives, serial (non-overlapped) pricing.
    #[must_use]
    pub fn new(chips: usize, topology: Topology) -> Self {
        DistServeConfig {
            chips,
            topology,
            link: Link::cloud(),
            partition: Partition::KvShard,
            algo: CollectiveAlgo::Ring,
            overlap: false,
        }
    }
}

/// Per-tick collective pricing, precomputed from the model's dimensions.
///
/// Built by [`serve_dist`], consumed inside the engine loop: each tick
/// reports its scheduled token count and gets back the fabric seconds to
/// add to the virtual clock.
#[derive(Debug, Clone)]
pub struct DistPlane {
    fabric: Fabric,
    /// The partition's per-token collective calls for one layer
    /// (operation + bytes for a single token's activations/state).
    per_token_calls: Vec<flat_dist::CollectiveCall>,
    layers: u64,
    /// Whether ticks price collectives overlapped with compute.
    overlap: bool,
    /// Running totals, accumulated tick by tick.
    pub(crate) fabric_busy_ms: f64,
    /// Collective milliseconds the compute could *not* hide: equal to
    /// `fabric_busy_ms` under serial pricing, smaller under overlap.
    pub(crate) exposed_ms: f64,
    pub(crate) payload_bytes: f64,
    /// Peak striped block count per shard.
    pub(crate) per_shard_peak: Vec<usize>,
}

impl DistPlane {
    pub(crate) fn new(model: &Model, cfg: &DistServeConfig) -> Self {
        let fabric = Fabric::new(cfg.chips, cfg.topology, cfg.link).with_algo(cfg.algo);
        // A one-token decode-shaped layer: the per-token exchange the
        // partition forces, independent of batch (batch scales bytes).
        let token_cfg = AttentionConfig::cross_attention(
            1,
            model.heads(),
            1,
            1,
            model.hidden(),
            model.ffn_hidden(),
        );
        DistPlane {
            fabric,
            per_token_calls: cfg.partition.collectives(&token_cfg, cfg.chips),
            layers: model.blocks(),
            overlap: cfg.overlap,
            fabric_busy_ms: 0.0,
            exposed_ms: 0.0,
            payload_bytes: 0.0,
            per_shard_peak: vec![0; cfg.chips],
        }
    }

    pub(crate) fn chips(&self) -> usize {
        self.fabric.chips
    }

    pub(crate) fn overlap(&self) -> bool {
        self.overlap
    }

    /// Fabric seconds one tick owes for `tokens` scheduled tokens: each
    /// model layer runs one batched collective round per call kind.
    pub(crate) fn collective_s(&self, tokens: u64) -> f64 {
        if tokens == 0 || self.per_token_calls.is_empty() {
            return 0.0;
        }
        let per_layer: f64 = self
            .per_token_calls
            .iter()
            .map(|c| {
                flat_dist::CollectiveCall {
                    op: c.op,
                    bytes: c.bytes.saturating_mul(tokens),
                }
                .cost_s(&self.fabric)
            })
            .sum();
        self.layers as f64 * per_layer
    }

    /// Payload bytes those collectives carried (before schedule
    /// expansion — the logical tensor sizes).
    pub(crate) fn tick_payload_bytes(&self, tokens: u64) -> f64 {
        self.layers as f64
            * tokens as f64
            * self
                .per_token_calls
                .iter()
                .map(|c| c.bytes as f64)
                .sum::<f64>()
    }

    /// Per-collective breakdown of one tick's fabric work, for the trace:
    /// each call kind becomes one slice per chip lane, with its batched
    /// duration, logical payload, and link energy. The slice durations
    /// sum to exactly [`collective_s`](Self::collective_s) for the same
    /// token count, so traced ticks close flush with the virtual clock.
    pub(crate) fn collective_slices(&self, tokens: u64) -> Vec<CollectiveSlice> {
        if tokens == 0 || self.per_token_calls.is_empty() {
            return Vec::new();
        }
        self.per_token_calls
            .iter()
            .map(|c| {
                let batched = flat_dist::CollectiveCall {
                    op: c.op,
                    bytes: c.bytes.saturating_mul(tokens),
                };
                CollectiveSlice {
                    op: match c.op {
                        flat_dist::CollectiveOp::AllReduce => "all-reduce",
                        flat_dist::CollectiveOp::AllGather => "all-gather",
                        flat_dist::CollectiveOp::ReduceScatter => "reduce-scatter",
                    },
                    dur_s: self.layers as f64 * batched.cost_s(&self.fabric),
                    bytes: batched.bytes.saturating_mul(self.layers),
                    energy_pj: self.layers as f64
                        * batched.traversed_bytes(&self.fabric)
                        * self.fabric.link.pj_per_byte,
                }
            })
            .collect()
    }

    /// Records this tick's pool usage against the round-robin striping:
    /// shard `s` holds `used/chips` blocks plus one more if `s` is under
    /// the remainder.
    pub(crate) fn observe_used_blocks(&mut self, used: usize) {
        let p = self.per_shard_peak.len().max(1);
        for (s, peak) in self.per_shard_peak.iter_mut().enumerate() {
            let share = used / p + usize::from(s < used % p);
            *peak = (*peak).max(share);
        }
    }
}

/// One tick's worth of a single collective kind, ready to stamp on each
/// chip's trace lane.
#[derive(Debug, Clone)]
pub(crate) struct CollectiveSlice {
    /// Operation label (`all-reduce`, `all-gather`, `reduce-scatter`).
    pub(crate) op: &'static str,
    /// Fabric seconds for the batched call across all model layers.
    pub(crate) dur_s: f64,
    /// Logical payload carried, in bytes (all layers).
    pub(crate) bytes: u64,
    /// Link energy charged by the traversed-bytes model, in picojoules.
    pub(crate) energy_pj: f64,
}

/// [`ServeMetrics`] plus the cluster-level view.
#[derive(Debug, Clone, Serialize)]
pub struct DistServeMetrics {
    /// Chips in the cluster.
    pub chips: usize,
    /// Fabric topology.
    pub topology: Topology,
    /// Sharding strategy.
    pub partition: Partition,
    /// Collective schedule priced on the fabric.
    pub algo: CollectiveAlgo,
    /// Whether ticks priced collectives overlapped with compute.
    pub overlap: bool,
    /// Virtual milliseconds the fabric was busy with collectives.
    pub fabric_busy_ms: f64,
    /// Collective milliseconds compute could not hide — what the ticks
    /// actually paid. Equals `fabric_busy_ms` under serial pricing.
    pub fabric_exposed_ms: f64,
    /// Exposed-fabric share of the makespan.
    pub fabric_fraction: f64,
    /// Logical collective payload carried over the run, in bytes.
    pub collective_payload_bytes: f64,
    /// Peak KV occupancy of each shard (striped pages ÷ per-shard
    /// capacity), indexed by shard id.
    pub per_shard_kv_peak_occupancy: Vec<f64>,
    /// The engine metrics, unchanged in shape from single-chip serving.
    pub serve: ServeMetrics,
}

impl DistServeMetrics {
    /// Pretty JSON, schema-stable for the CLI and the bench snapshots.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// `num_ms / den_ms` with every degenerate denominator (zero, negative,
/// NaN, infinite) clamped to 0.0 — the fraction must never be NaN in
/// `--json` output, matching the rate clamps in [`crate::metrics`].
fn safe_fraction(num_ms: f64, den_ms: f64) -> f64 {
    if den_ms.is_finite() && den_ms > 0.0 {
        let frac = num_ms / den_ms;
        if frac.is_finite() {
            frac
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// Runs a request stream on a cluster and reports engine + fabric
/// metrics. `chips = 1` reproduces [`crate::serve`] exactly.
///
/// # Errors
///
/// Everything [`crate::serve`] returns, plus
/// [`ServeError::InvalidConfig`] for a zero-chip cluster.
pub fn serve_dist(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    dist: &DistServeConfig,
) -> Result<DistServeMetrics, ServeError> {
    let mut sink = flat_telemetry::NoopSink;
    serve_dist_traced(accel, model, workload, cfg, dist, &mut sink)
}

/// [`serve_dist`], recording the run into a [`TraceSink`]: everything
/// the single-chip trace carries, plus one process lane per chip with
/// the tick's collective slices (operation, payload bytes, link energy)
/// on its fabric thread — stamped on the same deterministic virtual
/// clock, so fixed seeds yield byte-identical traces.
///
/// # Errors
///
/// As [`serve_dist`].
pub fn serve_dist_traced(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    dist: &DistServeConfig,
    sink: &mut dyn TraceSink,
) -> Result<DistServeMetrics, ServeError> {
    if dist.chips == 0 {
        return Err(ServeError::InvalidConfig(
            "a cluster needs at least one chip".to_owned(),
        ));
    }
    let plane = DistPlane::new(model, dist);
    let (serve, plane) = run_dist_engine(accel, model, workload, cfg, plane, sink)?;
    let shard_capacity = (serve.kv.total_blocks / dist.chips).max(1);
    let per_shard_kv_peak_occupancy = plane
        .per_shard_peak
        .iter()
        .map(|&peak| peak as f64 / shard_capacity as f64)
        .collect();
    Ok(DistServeMetrics {
        chips: dist.chips,
        topology: dist.topology,
        partition: dist.partition,
        algo: dist.algo,
        overlap: dist.overlap,
        fabric_busy_ms: plane.fabric_busy_ms,
        fabric_exposed_ms: plane.exposed_ms,
        fabric_fraction: safe_fraction(plane.exposed_ms, serve.makespan_ms),
        collective_payload_bytes: plane.payload_bytes,
        per_shard_kv_peak_occupancy,
        serve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::serve;
    use crate::workload::WorkloadSpec;
    use flat_workloads::Task;

    fn workload(n: usize) -> Vec<RequestSpec> {
        let mut spec = WorkloadSpec::from_task(Task::ShortNlp, n, 400.0);
        spec.prompt_mean = 48;
        spec.output_mean = 8;
        spec.generate(11).unwrap()
    }

    fn cfg(accel: &Accelerator, model: &Model) -> EngineConfig {
        let mut c = EngineConfig::for_platform(accel, model, 11);
        c.kv_budget = flat_tensor::Bytes::from_mib(64);
        c
    }

    /// The serving side of the acceptance criterion: one chip on a
    /// fully-connected fabric is byte-identical to the plain engine.
    #[test]
    fn one_chip_cluster_reproduces_single_chip_serving() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(12);
        let c = cfg(&accel, &model);
        let plain = serve(&accel, &model, &wl, &c).unwrap();
        let dist = serve_dist(
            &accel,
            &model,
            &wl,
            &c,
            &DistServeConfig::new(1, Topology::FullyConnected),
        )
        .unwrap();
        assert_eq!(
            dist.serve.to_json(),
            plain.to_json(),
            "engine metrics must be identical"
        );
        assert_eq!(dist.fabric_busy_ms, 0.0);
        assert_eq!(dist.fabric_exposed_ms, 0.0);
        assert_eq!(dist.collective_payload_bytes, 0.0);
        assert_eq!(dist.per_shard_kv_peak_occupancy.len(), 1);
    }

    /// Overlap pricing hides collective time behind compute: the fabric
    /// is exactly as busy, but ticks only pay the uncovered remainder,
    /// so the makespan can only shrink. Serial pricing exposes every
    /// fabric millisecond.
    #[test]
    fn overlap_hides_collective_time_without_changing_fabric_work() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(16);
        let c = cfg(&accel, &model);
        let mut serial = DistServeConfig::new(4, Topology::Ring);
        serial.algo = CollectiveAlgo::HalvingDoubling;
        let mut overlapped = serial;
        overlapped.overlap = true;
        let s = serve_dist(&accel, &model, &wl, &c, &serial).unwrap();
        let o = serve_dist(&accel, &model, &wl, &c, &overlapped).unwrap();
        assert_eq!(
            s.fabric_exposed_ms, s.fabric_busy_ms,
            "serial pricing exposes everything"
        );
        assert!(o.fabric_exposed_ms <= o.fabric_busy_ms);
        assert!(o.fabric_exposed_ms < s.fabric_exposed_ms);
        assert!(o.serve.makespan_ms <= s.serve.makespan_ms);
        assert_eq!(
            o.collective_payload_bytes, s.collective_payload_bytes,
            "overlap changes timing, not traffic"
        );
        assert!(o.to_json().contains("\"overlap\": true"));
        assert!(s.to_json().contains("\"algo\": \"hd\""));
    }

    /// The JSON fraction survives degenerate makespans: zero, negative,
    /// NaN, and infinite denominators all clamp to 0.0 instead of
    /// emitting NaN.
    #[test]
    fn fabric_fraction_is_never_nan() {
        assert_eq!(safe_fraction(3.0, 0.0), 0.0);
        assert_eq!(safe_fraction(3.0, -1.0), 0.0);
        assert_eq!(safe_fraction(3.0, f64::NAN), 0.0);
        assert_eq!(safe_fraction(3.0, f64::INFINITY), 0.0);
        assert_eq!(safe_fraction(f64::NAN, 2.0), 0.0);
        assert!((safe_fraction(1.0, 4.0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn more_chips_add_capacity_and_fabric_time() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(16);
        let c = cfg(&accel, &model);
        let one = serve_dist(
            &accel,
            &model,
            &wl,
            &c,
            &DistServeConfig::new(1, Topology::Ring),
        )
        .unwrap();
        let four = serve_dist(
            &accel,
            &model,
            &wl,
            &c,
            &DistServeConfig::new(4, Topology::Ring),
        )
        .unwrap();
        assert_eq!(four.serve.kv.total_blocks, 4 * one.serve.kv.total_blocks);
        assert!(four.fabric_busy_ms > 0.0);
        assert!(four.fabric_fraction > 0.0 && four.fabric_fraction < 1.0);
        assert_eq!(four.per_shard_kv_peak_occupancy.len(), 4);
        assert_eq!(
            four.serve.finished, one.serve.finished,
            "conservation holds on a cluster"
        );
    }

    #[test]
    fn shard_occupancies_follow_round_robin_striping() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(16);
        let m = serve_dist(
            &accel,
            &model,
            &wl,
            &cfg(&accel, &model),
            &DistServeConfig::new(4, Topology::Mesh2d),
        )
        .unwrap();
        let occ = &m.per_shard_kv_peak_occupancy;
        assert!(occ.iter().all(|&o| (0.0..=1.0).contains(&o)));
        // Striping keeps shards within one block of each other.
        let (max, min) = (
            occ.iter().copied().fold(0.0, f64::max),
            occ.iter().copied().fold(1.0, f64::min),
        );
        let shard_blocks = m.serve.kv.total_blocks as f64 / 4.0;
        assert!(
            (max - min) * shard_blocks <= 1.0 + 1e-9,
            "spread {max} vs {min}"
        );
    }

    #[test]
    fn determinism_and_serialization() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(8);
        let c = cfg(&accel, &model);
        let d = DistServeConfig::new(2, Topology::Ring);
        let a = serve_dist(&accel, &model, &wl, &c, &d).unwrap();
        let b = serve_dist(&accel, &model, &wl, &c, &d).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("fabric_busy_ms"));
    }

    #[test]
    fn zero_chips_is_a_typed_error() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let mut d = DistServeConfig::new(1, Topology::Ring);
        d.chips = 0;
        let err = serve_dist(&accel, &model, &workload(2), &cfg(&accel, &model), &d).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }
}
