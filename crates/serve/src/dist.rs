//! Distributed serving: the continuous-batching engine on a
//! multi-accelerator cluster.
//!
//! [`serve_dist`] runs the same iteration-level scheduler as [`crate::serve`]
//! against `chips` copies of the accelerator joined by a
//! [`flat_dist::Fabric`]:
//!
//! * **Capacity scales out** — every chip contributes its KV budget, so
//!   the paged pool holds `chips ×` the single-chip block count, with
//!   pages striped round-robin across shards (the per-shard occupancy
//!   the metrics report follows that striping).
//! * **Compute scales out** — tensor-parallel execution under the
//!   configured [`Partition`] divides each tick's MACs and weight/KV
//!   streaming across chips, so the accounting plane prices ticks
//!   against `chips ×` the FLOPs and off-chip bandwidth.
//! * **Collectives are paid on the virtual clock** — every scheduled
//!   token owes its partition's per-token collective payload; each tick
//!   batches those payloads into one collective round per model layer
//!   and adds the fabric time (α amortizes across the batch, β does
//!   not) to the tick's duration. The accumulated fabric-busy time and
//!   payload bytes surface in [`DistServeMetrics`].
//!
//! A 1-chip cluster is an exact identity with the single-chip engine:
//! the fabric prices every collective at zero and the scaling factors
//! are 1, so the metrics JSON matches [`crate::serve`] field for field —
//! a test pins this.

use crate::engine::{run_dist_engine, EngineConfig};
use crate::error::ServeError;
use crate::faults::FaultPlan;
use crate::metrics::ServeMetrics;
use crate::request::RequestSpec;
use flat_arch::Accelerator;
use flat_dist::{CollectiveAlgo, Fabric, Link, Partition, Topology};
use flat_telemetry::TraceSink;
use flat_workloads::{AttentionConfig, Model};
use serde::Serialize;

/// Cluster knobs for [`serve_dist`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistServeConfig {
    /// Accelerators in the cluster.
    pub chips: usize,
    /// How they are wired.
    pub topology: Topology,
    /// Per-link cost parameters.
    pub link: Link,
    /// Sharding strategy; [`Partition::KvShard`] is the serving-native
    /// choice (decode against a striped cache).
    pub partition: Partition,
    /// Collective schedule priced on the fabric.
    pub algo: CollectiveAlgo,
    /// Overlap collective rounds with the tick's compute: when set, a
    /// tick pays `max(compute, collective)` instead of their sum, and
    /// only the uncovered remainder shows up as exposed fabric time.
    pub overlap: bool,
}

impl DistServeConfig {
    /// A `chips`-wide cluster on cloud-class links, KV-shard partition,
    /// ring collectives, serial (non-overlapped) pricing.
    #[must_use]
    pub fn new(chips: usize, topology: Topology) -> Self {
        DistServeConfig {
            chips,
            topology,
            link: Link::cloud(),
            partition: Partition::KvShard,
            algo: CollectiveAlgo::Ring,
            overlap: false,
        }
    }
}

/// One elastic resize of the cluster: at `at_ms` of virtual time, the
/// chip count becomes `chips`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleEvent {
    /// Virtual time the resize takes effect (applied at the first tick
    /// whose clock has reached it).
    pub at_ms: f64,
    /// Cluster size after the event (≥ 1).
    pub chips: usize,
}

/// A schedule of elastic resizes for [`serve_dist_elastic`]. Events are
/// applied in `at_ms` order; an empty plan is a fixed-size cluster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalePlan {
    /// The resize events, any order (sorted before use).
    pub events: Vec<ScaleEvent>,
}

impl ScalePlan {
    /// A plan from `(at_ms, chips)` pairs.
    #[must_use]
    pub fn new(events: &[(f64, usize)]) -> Self {
        ScalePlan {
            events: events
                .iter()
                .map(|&(at_ms, chips)| ScaleEvent { at_ms, chips })
                .collect(),
        }
    }

    /// Rejects non-finite/negative times and zero-chip targets.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending event.
    pub fn validate(&self) -> Result<(), ServeError> {
        for ev in &self.events {
            if !(ev.at_ms.is_finite() && ev.at_ms >= 0.0) {
                return Err(ServeError::InvalidConfig(
                    "scale event time must be finite and non-negative".to_owned(),
                ));
            }
            if ev.chips == 0 {
                return Err(ServeError::InvalidConfig(
                    "scale event must keep at least one chip".to_owned(),
                ));
            }
        }
        Ok(())
    }

    /// The events sorted by time (ties by target size), ready to apply.
    #[must_use]
    pub fn sorted(&self) -> Vec<ScaleEvent> {
        let mut evs = self.events.clone();
        evs.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms).then(a.chips.cmp(&b.chips)));
        evs
    }
}

/// What one applied [`ScaleEvent`] cost: the KV blocks re-striped over
/// the fabric, the modeled bytes they carried, the stop-the-world stall
/// the migration added to the virtual clock, and the requests evicted to
/// fit a shrunken pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleEventRecord {
    /// When the event was scheduled.
    pub at_ms: f64,
    /// Virtual time it was actually applied (first tick at/after `at_ms`).
    pub applied_ms: f64,
    /// Cluster size before.
    pub from_chips: usize,
    /// Cluster size after.
    pub to_chips: usize,
    /// Resident KV blocks whose round-robin home shard changed.
    pub migrated_blocks: u64,
    /// Modeled bytes those blocks carried (at the serving element width).
    pub migrated_bytes: f64,
    /// Stall added to the virtual clock: sources transfer in parallel,
    /// each source serializes its own sends.
    pub migration_ms: f64,
    /// Running requests preempted so the resident set fits the new pool.
    pub preempted: u64,
}

/// Per-tick collective pricing, precomputed from the model's dimensions.
///
/// Built by [`serve_dist`], consumed inside the engine loop: each tick
/// reports its scheduled token count and gets back the fabric seconds to
/// add to the virtual clock.
#[derive(Debug, Clone)]
pub struct DistPlane {
    fabric: Fabric,
    /// The partition's per-token collective calls for one layer
    /// (operation + bytes for a single token's activations/state).
    per_token_calls: Vec<flat_dist::CollectiveCall>,
    layers: u64,
    /// Whether ticks price collectives overlapped with compute.
    overlap: bool,
    /// The cluster knobs, kept so elastic rescales can rebuild the fabric
    /// and the partition's collective calls for a new chip count.
    cfg: DistServeConfig,
    /// The one-token layer shape the per-token calls derive from.
    token_cfg: AttentionConfig,
    /// Running totals, accumulated tick by tick.
    pub(crate) fabric_busy_ms: f64,
    /// Collective milliseconds the compute could *not* hide: equal to
    /// `fabric_busy_ms` under serial pricing, smaller under overlap.
    pub(crate) exposed_ms: f64,
    pub(crate) payload_bytes: f64,
    /// Peak striped block count per shard (sized to the largest cluster
    /// seen; shards beyond the current size stop accumulating).
    pub(crate) per_shard_peak: Vec<usize>,
    /// Applied elastic resizes, in order.
    pub(crate) scale_log: Vec<ScaleEventRecord>,
}

impl DistPlane {
    pub(crate) fn new(model: &Model, cfg: &DistServeConfig) -> Self {
        let fabric = Fabric::new(cfg.chips, cfg.topology, cfg.link).with_algo(cfg.algo);
        // A one-token decode-shaped layer: the per-token exchange the
        // partition forces, independent of batch (batch scales bytes).
        let token_cfg = AttentionConfig::cross_attention(
            1,
            model.heads(),
            1,
            1,
            model.hidden(),
            model.ffn_hidden(),
        );
        DistPlane {
            fabric,
            per_token_calls: cfg.partition.collectives(&token_cfg, cfg.chips),
            layers: model.blocks(),
            overlap: cfg.overlap,
            cfg: *cfg,
            token_cfg,
            fabric_busy_ms: 0.0,
            exposed_ms: 0.0,
            payload_bytes: 0.0,
            per_shard_peak: vec![0; cfg.chips],
            scale_log: Vec::new(),
        }
    }

    pub(crate) fn chips(&self) -> usize {
        self.fabric.chips
    }

    /// Rebuilds the fabric and the partition's per-token collective calls
    /// for a resized cluster. Peak-occupancy lanes are extended (never
    /// truncated) so shards that existed keep their history.
    pub(crate) fn rescale(&mut self, chips: usize) {
        self.fabric = Fabric::new(chips, self.cfg.topology, self.cfg.link).with_algo(self.cfg.algo);
        self.per_token_calls = self.cfg.partition.collectives(&self.token_cfg, chips);
        if self.per_shard_peak.len() < chips {
            self.per_shard_peak.resize(chips, 0);
        }
    }

    /// Prices re-striping `used_blocks` resident KV blocks (round-robin
    /// homes) from a `chips()`-shard layout onto `to` shards: block `b`
    /// moves `b % from → b % to` when those differ. Transfers are priced
    /// point-to-point on a fabric spanning both layouts — sources send in
    /// parallel, each source serializes its own sends, so the stall is the
    /// slowest source's total. Returns `(blocks, bytes, stall_seconds)`.
    pub(crate) fn migration_cost(
        &self,
        used_blocks: usize,
        block_bytes: f64,
        to: usize,
    ) -> (u64, f64, f64) {
        let from = self.fabric.chips.max(1);
        let to = to.max(1);
        if from == to || used_blocks == 0 {
            return (0, 0.0, 0.0);
        }
        let span = from.max(to);
        let pricing = Fabric::new(span, self.cfg.topology, self.cfg.link).with_algo(self.cfg.algo);
        let mut moved = vec![0u64; span * span];
        for b in 0..used_blocks {
            let (s, d) = (b % from, b % to);
            if s != d {
                moved[s * span + d] += 1;
            }
        }
        let mut blocks = 0u64;
        let mut stall_s = 0.0f64;
        for s in 0..span {
            let mut src_s = 0.0;
            for d in 0..span {
                let n = moved[s * span + d];
                if n == 0 {
                    continue;
                }
                blocks += n;
                let bytes = (n as f64 * block_bytes).round() as u64;
                src_s += pricing.p2p_s(bytes, s, d);
            }
            stall_s = stall_s.max(src_s);
        }
        (blocks, blocks as f64 * block_bytes, stall_s)
    }

    pub(crate) fn overlap(&self) -> bool {
        self.overlap
    }

    /// Fabric seconds one tick owes for `tokens` scheduled tokens: each
    /// model layer runs one batched collective round per call kind.
    pub(crate) fn collective_s(&self, tokens: u64) -> f64 {
        if tokens == 0 || self.per_token_calls.is_empty() {
            return 0.0;
        }
        let per_layer: f64 = self
            .per_token_calls
            .iter()
            .map(|c| {
                flat_dist::CollectiveCall {
                    op: c.op,
                    bytes: c.bytes.saturating_mul(tokens),
                }
                .cost_s(&self.fabric)
            })
            .sum();
        self.layers as f64 * per_layer
    }

    /// Payload bytes those collectives carried (before schedule
    /// expansion — the logical tensor sizes).
    pub(crate) fn tick_payload_bytes(&self, tokens: u64) -> f64 {
        self.layers as f64
            * tokens as f64
            * self
                .per_token_calls
                .iter()
                .map(|c| c.bytes as f64)
                .sum::<f64>()
    }

    /// Per-collective breakdown of one tick's fabric work, for the trace:
    /// each call kind becomes one slice per chip lane, with its batched
    /// duration, logical payload, and link energy. The slice durations
    /// sum to exactly [`collective_s`](Self::collective_s) for the same
    /// token count, so traced ticks close flush with the virtual clock.
    pub(crate) fn collective_slices(&self, tokens: u64) -> Vec<CollectiveSlice> {
        if tokens == 0 || self.per_token_calls.is_empty() {
            return Vec::new();
        }
        self.per_token_calls
            .iter()
            .map(|c| {
                let batched = flat_dist::CollectiveCall {
                    op: c.op,
                    bytes: c.bytes.saturating_mul(tokens),
                };
                CollectiveSlice {
                    op: match c.op {
                        flat_dist::CollectiveOp::AllReduce => "all-reduce",
                        flat_dist::CollectiveOp::AllGather => "all-gather",
                        flat_dist::CollectiveOp::ReduceScatter => "reduce-scatter",
                    },
                    dur_s: self.layers as f64 * batched.cost_s(&self.fabric),
                    bytes: batched.bytes.saturating_mul(self.layers),
                    energy_pj: self.layers as f64
                        * batched.traversed_bytes(&self.fabric)
                        * self.fabric.link.pj_per_byte,
                }
            })
            .collect()
    }

    /// Records this tick's pool usage against the round-robin striping:
    /// shard `s` holds `used/chips` blocks plus one more if `s` is under
    /// the remainder. Striping follows the *current* chip count; lanes
    /// beyond it (from a larger past cluster) keep their peak.
    pub(crate) fn observe_used_blocks(&mut self, used: usize) {
        let p = self.fabric.chips.max(1);
        for (s, peak) in self.per_shard_peak.iter_mut().enumerate().take(p) {
            let share = used / p + usize::from(s < used % p);
            *peak = (*peak).max(share);
        }
    }
}

/// One tick's worth of a single collective kind, ready to stamp on each
/// chip's trace lane.
#[derive(Debug, Clone)]
pub(crate) struct CollectiveSlice {
    /// Operation label (`all-reduce`, `all-gather`, `reduce-scatter`).
    pub(crate) op: &'static str,
    /// Fabric seconds for the batched call across all model layers.
    pub(crate) dur_s: f64,
    /// Logical payload carried, in bytes (all layers).
    pub(crate) bytes: u64,
    /// Link energy charged by the traversed-bytes model, in picojoules.
    pub(crate) energy_pj: f64,
}

/// [`ServeMetrics`] plus the cluster-level view.
#[derive(Debug, Clone, Serialize)]
pub struct DistServeMetrics {
    /// Chips in the cluster at the start of the run.
    pub chips: usize,
    /// Chips at the end of the run (differs under an elastic plan).
    pub chips_final: usize,
    /// Fabric topology.
    pub topology: Topology,
    /// Sharding strategy.
    pub partition: Partition,
    /// Collective schedule priced on the fabric.
    pub algo: CollectiveAlgo,
    /// Whether ticks priced collectives overlapped with compute.
    pub overlap: bool,
    /// Virtual milliseconds the fabric was busy with collectives.
    pub fabric_busy_ms: f64,
    /// Collective milliseconds compute could not hide — what the ticks
    /// actually paid. Equals `fabric_busy_ms` under serial pricing.
    pub fabric_exposed_ms: f64,
    /// Exposed-fabric share of the makespan.
    pub fabric_fraction: f64,
    /// Logical collective payload carried over the run, in bytes.
    pub collective_payload_bytes: f64,
    /// Peak KV occupancy of each shard (striped pages ÷ per-shard
    /// capacity), indexed by shard id; under an elastic plan the list
    /// spans the largest cluster seen.
    pub per_shard_kv_peak_occupancy: Vec<f64>,
    /// Applied elastic resizes with their migration costs (empty on a
    /// fixed-size run).
    pub scale_events: Vec<ScaleEventRecord>,
    /// Total modeled bytes of KV state re-striped by elastic resizes.
    pub kv_migrated_bytes: f64,
    /// Total virtual milliseconds the resizes stalled the engine.
    pub kv_migration_ms: f64,
    /// The engine metrics, unchanged in shape from single-chip serving.
    pub serve: ServeMetrics,
}

impl DistServeMetrics {
    /// Pretty JSON, schema-stable for the CLI and the bench snapshots.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// `num_ms / den_ms` with every degenerate denominator (zero, negative,
/// NaN, infinite) clamped to 0.0 — the fraction must never be NaN in
/// `--json` output, matching the rate clamps in [`crate::metrics`].
fn safe_fraction(num_ms: f64, den_ms: f64) -> f64 {
    if den_ms.is_finite() && den_ms > 0.0 {
        let frac = num_ms / den_ms;
        if frac.is_finite() {
            frac
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// Runs a request stream on a cluster and reports engine + fabric
/// metrics. `chips = 1` reproduces [`crate::serve`] exactly.
///
/// # Errors
///
/// Everything [`crate::serve`] returns, plus
/// [`ServeError::InvalidConfig`] for a zero-chip cluster.
pub fn serve_dist(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    dist: &DistServeConfig,
) -> Result<DistServeMetrics, ServeError> {
    let mut sink = flat_telemetry::NoopSink;
    serve_dist_traced(accel, model, workload, cfg, dist, &mut sink)
}

/// [`serve_dist`], recording the run into a [`TraceSink`]: everything
/// the single-chip trace carries, plus one process lane per chip with
/// the tick's collective slices (operation, payload bytes, link energy)
/// on its fabric thread — stamped on the same deterministic virtual
/// clock, so fixed seeds yield byte-identical traces.
///
/// # Errors
///
/// As [`serve_dist`].
pub fn serve_dist_traced(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    dist: &DistServeConfig,
    sink: &mut dyn TraceSink,
) -> Result<DistServeMetrics, ServeError> {
    serve_dist_elastic(
        accel,
        model,
        workload,
        cfg,
        dist,
        &ScalePlan::default(),
        None,
        sink,
    )
}

/// [`serve_dist`] with a seeded [`FaultPlan`] injecting mid-run failures —
/// the cluster-scale chaos entry point. Conservation
/// (`finished + dropped == offered`) holds exactly as it does for
/// single-chip [`crate::serve_with_faults`]; the chaos suite pins it.
///
/// # Errors
///
/// As [`serve_dist`].
pub fn serve_dist_with_faults(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    dist: &DistServeConfig,
    faults: Option<FaultPlan>,
) -> Result<DistServeMetrics, ServeError> {
    let mut sink = flat_telemetry::NoopSink;
    serve_dist_elastic(
        accel,
        model,
        workload,
        cfg,
        dist,
        &ScalePlan::default(),
        faults,
        &mut sink,
    )
}

/// The full-control cluster entry point: [`serve_dist`] plus an elastic
/// [`ScalePlan`] (resize the cluster mid-run, with resident-KV migration
/// priced point-to-point over the fabric and reported per event), an
/// optional [`FaultPlan`], and a [`TraceSink`]. `dist.chips` is the
/// starting size; each applied event rebuilds the fabric, rescales the
/// modeled compute/bandwidth, and grows or shrinks the pooled KV capacity
/// (evicting by priority when the resident set no longer fits).
///
/// # Errors
///
/// As [`serve_dist`], plus [`ServeError::InvalidConfig`] for a malformed
/// plan (non-finite time or zero-chip target).
#[allow(clippy::too_many_arguments)]
pub fn serve_dist_elastic(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    dist: &DistServeConfig,
    plan: &ScalePlan,
    faults: Option<FaultPlan>,
    sink: &mut dyn TraceSink,
) -> Result<DistServeMetrics, ServeError> {
    if dist.chips == 0 {
        return Err(ServeError::InvalidConfig(
            "a cluster needs at least one chip".to_owned(),
        ));
    }
    plan.validate()?;
    let plane = DistPlane::new(model, dist);
    let (serve, plane) = run_dist_engine(
        accel,
        model,
        workload,
        cfg,
        plane,
        faults,
        &plan.sorted(),
        sink,
    )?;
    let shard_capacity = (serve.kv.total_blocks / plane.chips().max(1)).max(1);
    let per_shard_kv_peak_occupancy = plane
        .per_shard_peak
        .iter()
        .map(|&peak| peak as f64 / shard_capacity as f64)
        .collect();
    Ok(DistServeMetrics {
        chips: dist.chips,
        chips_final: plane.chips(),
        topology: dist.topology,
        partition: dist.partition,
        algo: dist.algo,
        overlap: dist.overlap,
        fabric_busy_ms: plane.fabric_busy_ms,
        fabric_exposed_ms: plane.exposed_ms,
        fabric_fraction: safe_fraction(plane.exposed_ms, serve.makespan_ms),
        collective_payload_bytes: plane.payload_bytes,
        per_shard_kv_peak_occupancy,
        kv_migrated_bytes: plane.scale_log.iter().map(|e| e.migrated_bytes).sum(),
        kv_migration_ms: plane.scale_log.iter().map(|e| e.migration_ms).sum(),
        scale_events: plane.scale_log.clone(),
        serve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::serve;
    use crate::workload::WorkloadSpec;
    use flat_workloads::Task;

    fn workload(n: usize) -> Vec<RequestSpec> {
        let mut spec = WorkloadSpec::from_task(Task::ShortNlp, n, 400.0);
        spec.prompt_mean = 48;
        spec.output_mean = 8;
        spec.generate(11).unwrap()
    }

    fn cfg(accel: &Accelerator, model: &Model) -> EngineConfig {
        let mut c = EngineConfig::for_platform(accel, model, 11);
        c.kv_budget = flat_tensor::Bytes::from_mib(64);
        c
    }

    /// The serving side of the acceptance criterion: one chip on a
    /// fully-connected fabric is byte-identical to the plain engine.
    #[test]
    fn one_chip_cluster_reproduces_single_chip_serving() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(12);
        let c = cfg(&accel, &model);
        let plain = serve(&accel, &model, &wl, &c).unwrap();
        let dist = serve_dist(
            &accel,
            &model,
            &wl,
            &c,
            &DistServeConfig::new(1, Topology::FullyConnected),
        )
        .unwrap();
        assert_eq!(
            dist.serve.to_json(),
            plain.to_json(),
            "engine metrics must be identical"
        );
        assert_eq!(dist.fabric_busy_ms, 0.0);
        assert_eq!(dist.fabric_exposed_ms, 0.0);
        assert_eq!(dist.collective_payload_bytes, 0.0);
        assert_eq!(dist.per_shard_kv_peak_occupancy.len(), 1);
    }

    /// Overlap pricing hides collective time behind compute: the fabric
    /// is exactly as busy, but ticks only pay the uncovered remainder,
    /// so the makespan can only shrink. Serial pricing exposes every
    /// fabric millisecond.
    #[test]
    fn overlap_hides_collective_time_without_changing_fabric_work() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(16);
        let c = cfg(&accel, &model);
        let mut serial = DistServeConfig::new(4, Topology::Ring);
        serial.algo = CollectiveAlgo::HalvingDoubling;
        let mut overlapped = serial;
        overlapped.overlap = true;
        let s = serve_dist(&accel, &model, &wl, &c, &serial).unwrap();
        let o = serve_dist(&accel, &model, &wl, &c, &overlapped).unwrap();
        assert_eq!(
            s.fabric_exposed_ms, s.fabric_busy_ms,
            "serial pricing exposes everything"
        );
        assert!(o.fabric_exposed_ms <= o.fabric_busy_ms);
        assert!(o.fabric_exposed_ms < s.fabric_exposed_ms);
        assert!(o.serve.makespan_ms <= s.serve.makespan_ms);
        assert_eq!(
            o.collective_payload_bytes, s.collective_payload_bytes,
            "overlap changes timing, not traffic"
        );
        assert!(o.to_json().contains("\"overlap\": true"));
        assert!(s.to_json().contains("\"algo\": \"hd\""));
    }

    /// The JSON fraction survives degenerate makespans: zero, negative,
    /// NaN, and infinite denominators all clamp to 0.0 instead of
    /// emitting NaN.
    #[test]
    fn fabric_fraction_is_never_nan() {
        assert_eq!(safe_fraction(3.0, 0.0), 0.0);
        assert_eq!(safe_fraction(3.0, -1.0), 0.0);
        assert_eq!(safe_fraction(3.0, f64::NAN), 0.0);
        assert_eq!(safe_fraction(3.0, f64::INFINITY), 0.0);
        assert_eq!(safe_fraction(f64::NAN, 2.0), 0.0);
        assert!((safe_fraction(1.0, 4.0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn more_chips_add_capacity_and_fabric_time() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(16);
        let c = cfg(&accel, &model);
        let one = serve_dist(
            &accel,
            &model,
            &wl,
            &c,
            &DistServeConfig::new(1, Topology::Ring),
        )
        .unwrap();
        let four = serve_dist(
            &accel,
            &model,
            &wl,
            &c,
            &DistServeConfig::new(4, Topology::Ring),
        )
        .unwrap();
        assert_eq!(four.serve.kv.total_blocks, 4 * one.serve.kv.total_blocks);
        assert!(four.fabric_busy_ms > 0.0);
        assert!(four.fabric_fraction > 0.0 && four.fabric_fraction < 1.0);
        assert_eq!(four.per_shard_kv_peak_occupancy.len(), 4);
        assert_eq!(
            four.serve.finished, one.serve.finished,
            "conservation holds on a cluster"
        );
    }

    #[test]
    fn shard_occupancies_follow_round_robin_striping() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(16);
        let m = serve_dist(
            &accel,
            &model,
            &wl,
            &cfg(&accel, &model),
            &DistServeConfig::new(4, Topology::Mesh2d),
        )
        .unwrap();
        let occ = &m.per_shard_kv_peak_occupancy;
        assert!(occ.iter().all(|&o| (0.0..=1.0).contains(&o)));
        // Striping keeps shards within one block of each other.
        let (max, min) = (
            occ.iter().copied().fold(0.0, f64::max),
            occ.iter().copied().fold(1.0, f64::min),
        );
        let shard_blocks = m.serve.kv.total_blocks as f64 / 4.0;
        assert!(
            (max - min) * shard_blocks <= 1.0 + 1e-9,
            "spread {max} vs {min}"
        );
    }

    #[test]
    fn determinism_and_serialization() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let wl = workload(8);
        let c = cfg(&accel, &model);
        let d = DistServeConfig::new(2, Topology::Ring);
        let a = serve_dist(&accel, &model, &wl, &c, &d).unwrap();
        let b = serve_dist(&accel, &model, &wl, &c, &d).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("fabric_busy_ms"));
    }

    #[test]
    fn zero_chips_is_a_typed_error() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        let mut d = DistServeConfig::new(1, Topology::Ring);
        d.chips = 0;
        let err = serve_dist(&accel, &model, &workload(2), &cfg(&accel, &model), &d).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }
}
