//! Requests: the unit of work the serving engine schedules.

use crate::kv::BlockTable;

/// An incoming request as the synthetic workload generator produces it:
/// when it arrives and how many tokens it brings/wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpec {
    /// Stable request id (also the tiebreak for scheduling order).
    pub id: usize,
    /// Arrival time in engine milliseconds.
    pub arrival_ms: f64,
    /// Prompt length in tokens (≥ 1).
    pub prompt_len: usize,
    /// Tokens to generate (≥ 1).
    pub output_len: usize,
}

/// Lifecycle of a request inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// In the waiting queue (arrived, not yet admitted — or preempted).
    Waiting,
    /// Admitted; prompt tokens are being ingested chunk by chunk.
    Prefill,
    /// Generating output tokens, one per engine tick.
    Decode,
    /// All output tokens produced, KV blocks released.
    Finished,
}

/// A live request: spec, progress, KV block table, and timing marks.
#[derive(Debug, Clone)]
pub struct Request {
    /// The immutable arrival-time facts.
    pub spec: RequestSpec,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// This request's pages in the KV pool.
    pub table: BlockTable,
    /// Prompt tokens ingested so far.
    pub prefilled: usize,
    /// Output tokens generated so far.
    pub generated: usize,
    /// When the first output token was produced.
    pub first_token_ms: Option<f64>,
    /// When the last output token was produced.
    pub finish_ms: Option<f64>,
    /// Times this request was evicted and restarted.
    pub preemptions: u64,
    /// Attention output of the latest executed step — feeds the next
    /// step's Q/K/V derivation, making generation genuinely sequential.
    pub last_out: Vec<f32>,
}

impl Request {
    /// A fresh waiting request.
    #[must_use]
    pub fn new(spec: RequestSpec) -> Self {
        Request {
            spec,
            phase: Phase::Waiting,
            table: BlockTable::new(),
            prefilled: 0,
            generated: 0,
            first_token_ms: None,
            finish_ms: None,
            preemptions: 0,
            last_out: Vec::new(),
        }
    }

    /// Time to first token, if one was produced.
    #[must_use]
    pub fn ttft_ms(&self) -> Option<f64> {
        self.first_token_ms.map(|t| t - self.spec.arrival_ms)
    }

    /// Mean time per output token *after* the first (the steady-state
    /// decode pace); `None` until finished or for single-token outputs.
    #[must_use]
    pub fn tpot_ms(&self) -> Option<f64> {
        match (self.first_token_ms, self.finish_ms) {
            (Some(first), Some(finish)) if self.spec.output_len > 1 => {
                Some((finish - first) / (self.spec.output_len - 1) as f64)
            }
            _ => None,
        }
    }

    /// End-to-end latency, if finished.
    #[must_use]
    pub fn e2e_ms(&self) -> Option<f64> {
        self.finish_ms.map(|t| t - self.spec.arrival_ms)
    }

    /// Drops all progress (KV table must already be released): the
    /// preemption-by-recomputation path.
    pub fn reset_for_requeue(&mut self) {
        debug_assert_eq!(self.table.tokens(), 0, "release the table before requeueing");
        self.phase = Phase::Waiting;
        self.prefilled = 0;
        self.generated = 0;
        self.first_token_ms = None;
        self.last_out.clear();
        self.preemptions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RequestSpec {
        RequestSpec { id: 0, arrival_ms: 10.0, prompt_len: 4, output_len: 3 }
    }

    #[test]
    fn latency_marks_derive_from_arrival() {
        let mut r = Request::new(spec());
        assert_eq!(r.ttft_ms(), None);
        r.first_token_ms = Some(25.0);
        r.finish_ms = Some(45.0);
        assert_eq!(r.ttft_ms(), Some(15.0));
        assert_eq!(r.tpot_ms(), Some(10.0));
        assert_eq!(r.e2e_ms(), Some(35.0));
    }

    #[test]
    fn requeue_clears_progress_and_counts() {
        let mut r = Request::new(spec());
        r.phase = Phase::Decode;
        r.prefilled = 4;
        r.generated = 2;
        r.first_token_ms = Some(20.0);
        r.last_out = vec![1.0];
        r.reset_for_requeue();
        assert_eq!(r.phase, Phase::Waiting);
        assert_eq!((r.prefilled, r.generated), (0, 0));
        assert_eq!(r.first_token_ms, None);
        assert!(r.last_out.is_empty());
        assert_eq!(r.preemptions, 1);
    }
}
