//! Requests: the unit of work the serving engine schedules.

use crate::error::DropReason;
use crate::kv::BlockTable;

/// An incoming request as the synthetic workload generator produces it:
/// when it arrives and how many tokens it brings/wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpec {
    /// Stable request id (also the tiebreak for scheduling order).
    pub id: usize,
    /// Arrival time in engine milliseconds.
    pub arrival_ms: f64,
    /// Prompt length in tokens (≥ 1).
    pub prompt_len: usize,
    /// Tokens to generate (≥ 1).
    pub output_len: usize,
    /// Absolute deadline in engine milliseconds (the request's SLO):
    /// still queued past this instant, the request is shed with
    /// [`DropReason::DeadlineExceeded`]. `None` means no deadline.
    pub deadline_ms: Option<f64>,
    /// Tenant class the request bills to (0 = the default tenant).
    pub tenant: u32,
    /// Scheduling priority class: higher values are evicted *last* under
    /// KV pressure. Requests of equal priority fall back to arrival order.
    pub priority: u8,
    /// Weighted-fair-admission weight of this request's tenant, in
    /// milli-units (1000 = weight 1.0). Zero is clamped to 1 by the
    /// scheduler rather than rejected.
    pub weight_milli: u32,
    /// Prefix-template id: requests carrying the same template id share
    /// their first [`prefix_len`](Self::prefix_len) prompt tokens
    /// verbatim (system prompt / few-shot preamble), which the engine's
    /// copy-on-write KV pool dedups at block granularity. `None` means a
    /// fully private prompt.
    pub prefix_template: Option<u64>,
    /// Shared-prefix length in tokens (meaningful only with a template;
    /// clamped to the prompt length).
    pub prefix_len: usize,
}

impl RequestSpec {
    /// A spec with no deadline, default tenant/priority, and no shared
    /// prefix — the common case for tests and synthetic workloads.
    #[must_use]
    pub fn new(id: usize, arrival_ms: f64, prompt_len: usize, output_len: usize) -> Self {
        RequestSpec {
            id,
            arrival_ms,
            prompt_len,
            output_len,
            deadline_ms: None,
            tenant: 0,
            priority: 0,
            weight_milli: 1000,
            prefix_template: None,
            prefix_len: 0,
        }
    }

    /// Tokens at the head of the prompt drawn from the shared template:
    /// zero without a template, never longer than the prompt itself.
    #[must_use]
    pub fn shared_prefix_len(&self) -> usize {
        if self.prefix_template.is_some() {
            self.prefix_len.min(self.prompt_len)
        } else {
            0
        }
    }

    /// Whether the spec is structurally sound: finite arrival (and
    /// deadline, when present) and at least one prompt and output token.
    /// Corrupt specs are shed at admission, never scheduled.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.arrival_ms.is_finite()
            && self.deadline_ms.is_none_or(f64::is_finite)
            && self.prompt_len >= 1
            && self.output_len >= 1
    }
}

/// Lifecycle of a request inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// In the waiting queue (arrived, not yet admitted — or preempted).
    Waiting,
    /// Admitted; prompt tokens are being ingested chunk by chunk.
    Prefill,
    /// Generating output tokens, one per engine tick.
    Decode,
    /// All output tokens produced, KV blocks released.
    Finished,
}

/// A live request: spec, progress, KV block table, and timing marks.
#[derive(Debug, Clone)]
pub struct Request {
    /// The immutable arrival-time facts.
    pub spec: RequestSpec,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// This request's pages in the KV pool.
    pub table: BlockTable,
    /// Prompt tokens ingested so far.
    pub prefilled: usize,
    /// Output tokens generated so far.
    pub generated: usize,
    /// When the first output token was produced.
    pub first_token_ms: Option<f64>,
    /// When the last output token was produced.
    pub finish_ms: Option<f64>,
    /// Times this request was evicted and restarted.
    pub preemptions: u64,
    /// Why the request was shed, if it was (`None` for requests that ran
    /// to completion). A dropped request never has `finish_ms`.
    pub drop_reason: Option<DropReason>,
    /// When the request was shed, if it was.
    pub drop_ms: Option<f64>,
    /// Attention output of the latest executed step — feeds the next
    /// step's Q/K/V derivation, making generation genuinely sequential.
    pub last_out: Vec<f32>,
}

impl Request {
    /// A fresh waiting request.
    #[must_use]
    pub fn new(spec: RequestSpec) -> Self {
        Request {
            spec,
            phase: Phase::Waiting,
            table: BlockTable::new(),
            prefilled: 0,
            generated: 0,
            first_token_ms: None,
            finish_ms: None,
            preemptions: 0,
            drop_reason: None,
            drop_ms: None,
            last_out: Vec::new(),
        }
    }

    /// Marks the request shed: reason and timestamp recorded, progress
    /// irrelevant from here on.
    pub fn mark_dropped(&mut self, reason: DropReason, now_ms: f64) {
        self.drop_reason = Some(reason);
        self.drop_ms = Some(now_ms);
    }

    /// Whether the request finished within its deadline (vacuously true
    /// without one). A non-finite finish stamp — the fault injector's
    /// work — never counts as meeting a deadline.
    #[must_use]
    pub fn met_deadline(&self) -> bool {
        match (self.finish_ms, self.spec.deadline_ms) {
            (Some(finish), Some(deadline)) => finish <= deadline,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Time to first token, if one was produced.
    #[must_use]
    pub fn ttft_ms(&self) -> Option<f64> {
        self.first_token_ms.map(|t| t - self.spec.arrival_ms)
    }

    /// Mean time per output token *after* the first (the steady-state
    /// decode pace); `None` until finished or for single-token outputs.
    #[must_use]
    pub fn tpot_ms(&self) -> Option<f64> {
        match (self.first_token_ms, self.finish_ms) {
            (Some(first), Some(finish)) if self.spec.output_len > 1 => {
                Some((finish - first) / (self.spec.output_len - 1) as f64)
            }
            _ => None,
        }
    }

    /// End-to-end latency, if finished.
    #[must_use]
    pub fn e2e_ms(&self) -> Option<f64> {
        self.finish_ms.map(|t| t - self.spec.arrival_ms)
    }

    /// Drops all progress (KV table must already be released): the
    /// preemption-by-recomputation path.
    pub fn reset_for_requeue(&mut self) {
        debug_assert_eq!(
            self.table.tokens(),
            0,
            "release the table before requeueing"
        );
        self.phase = Phase::Waiting;
        self.prefilled = 0;
        self.generated = 0;
        self.first_token_ms = None;
        self.last_out.clear();
        self.preemptions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> RequestSpec {
        RequestSpec::new(0, 10.0, 4, 3)
    }

    #[test]
    fn latency_marks_derive_from_arrival() {
        let mut r = Request::new(spec());
        assert_eq!(r.ttft_ms(), None);
        r.first_token_ms = Some(25.0);
        r.finish_ms = Some(45.0);
        assert_eq!(r.ttft_ms(), Some(15.0));
        assert_eq!(r.tpot_ms(), Some(10.0));
        assert_eq!(r.e2e_ms(), Some(35.0));
    }

    #[test]
    fn requeue_clears_progress_and_counts() {
        let mut r = Request::new(spec());
        r.phase = Phase::Decode;
        r.prefilled = 4;
        r.generated = 2;
        r.first_token_ms = Some(20.0);
        r.last_out = vec![1.0];
        r.reset_for_requeue();
        assert_eq!(r.phase, Phase::Waiting);
        assert_eq!((r.prefilled, r.generated), (0, 0));
        assert_eq!(r.first_token_ms, None);
        assert!(r.last_out.is_empty());
        assert_eq!(r.preemptions, 1);
    }

    #[test]
    fn well_formedness_rejects_corrupt_specs() {
        assert!(spec().is_well_formed());
        assert!(!RequestSpec {
            arrival_ms: f64::NAN,
            ..spec()
        }
        .is_well_formed());
        assert!(!RequestSpec {
            prompt_len: 0,
            ..spec()
        }
        .is_well_formed());
        assert!(!RequestSpec {
            output_len: 0,
            ..spec()
        }
        .is_well_formed());
        assert!(!RequestSpec {
            deadline_ms: Some(f64::INFINITY),
            ..spec()
        }
        .is_well_formed());
        assert!(RequestSpec {
            deadline_ms: Some(20.0),
            ..spec()
        }
        .is_well_formed());
    }

    #[test]
    fn deadline_accounting() {
        let mut r = Request::new(RequestSpec {
            deadline_ms: Some(40.0),
            ..spec()
        });
        assert!(
            !r.met_deadline(),
            "unfinished requests never meet a deadline"
        );
        r.finish_ms = Some(39.0);
        assert!(r.met_deadline());
        r.finish_ms = Some(41.0);
        assert!(!r.met_deadline());
        r.finish_ms = Some(f64::NAN);
        assert!(
            !r.met_deadline(),
            "a corrupted stamp must not count as goodput"
        );
        let mut free = Request::new(spec());
        free.finish_ms = Some(1e9);
        assert!(free.met_deadline(), "no deadline is vacuously met");
    }

    #[test]
    fn dropped_marks_reason_and_time() {
        let mut r = Request::new(spec());
        r.mark_dropped(DropReason::Infeasible, 12.5);
        assert_eq!(r.drop_reason, Some(DropReason::Infeasible));
        assert_eq!(r.drop_ms, Some(12.5));
        assert_eq!(r.finish_ms, None);
    }
}
