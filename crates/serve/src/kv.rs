//! The paged KV-cache: fixed-size token blocks, a free list, and
//! per-request block tables.
//!
//! Serving keeps one K and one V row per *token* per request alive for the
//! whole lifetime of the request — the dominant memory consumer of an
//! inference engine. Paging (vLLM-style) allocates that storage in
//! fixed-size blocks of `block_tokens` rows so that requests grow without
//! reserving their worst case up front and freed memory never fragments:
//! any free block serves any request.
//!
//! Two layers live here:
//!
//! * [`KvLayout`] — *accounting*: how many modeled bytes one token of KV
//!   state costs for a given [`Model`] (all layers, all heads, 16-bit
//!   elements), and how many blocks a budget drawn from the accelerator's
//!   modeled off-chip memory affords.
//! * [`KvPool`] / [`BlockTable`] — *storage*: the actual f32 rows the
//!   decode kernel reads, held at the engine's reduced execution width
//!   (one representative head), plus alloc/free bookkeeping.

use std::collections::HashMap;

use flat_tensor::Bytes;
use flat_workloads::Model;

/// FNV-1a 64-bit offset basis — the chain seed of an empty prefix.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends a FNV-1a chain hash over one block's K and V rows. Chaining
/// from the previous block's hash makes the digest positional: two blocks
/// share a hash only if their *entire prefix history* matches, not just
/// their own 16 tokens.
fn chain_hash(seed: u64, k: &[f32], v: &[f32]) -> u64 {
    let mut h = seed;
    for word in k.iter().chain(v.iter()) {
        for byte in word.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Modeled KV-cache cost of one token, and the paging geometry.
///
/// # Example
///
/// ```
/// use flat_serve::KvLayout;
/// use flat_workloads::Model;
///
/// let layout = KvLayout::for_model(&Model::by_name("bert").unwrap(), 16);
/// // 2 tensors × hidden × 2 bytes × layers.
/// assert_eq!(layout.bytes_per_token.as_u64(), 2 * 768 * 2 * 12);
/// assert_eq!(layout.blocks_for(17), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    /// Tokens per cache block.
    pub block_tokens: usize,
    /// Modeled bytes of KV state per token: K and V, every layer, the
    /// full hidden width, 16-bit elements.
    pub bytes_per_token: Bytes,
}

impl KvLayout {
    /// Element width of the modeled cache (fp16/bf16 serving default).
    pub const ELEM_BYTES: u64 = 2;

    /// The layout for a model: `2 × hidden × 2 B × layers` per token.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    #[must_use]
    pub fn for_model(model: &Model, block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        let per_token = 2 * model.hidden() * Self::ELEM_BYTES * model.blocks();
        KvLayout {
            block_tokens,
            bytes_per_token: Bytes::new(per_token),
        }
    }

    /// Blocks needed to hold `tokens` rows (ceiling division).
    #[must_use]
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Modeled bytes of one block.
    #[must_use]
    pub fn block_bytes(&self) -> Bytes {
        self.bytes_per_token * self.block_tokens as u64
    }

    /// How many whole blocks a memory budget affords (at least one).
    #[must_use]
    pub fn blocks_in_budget(&self, budget: Bytes) -> usize {
        ((budget.as_u64() / self.block_bytes().as_u64()) as usize).max(1)
    }
}

/// A request's view into the pool: the ordered list of block ids holding
/// its tokens, plus how many token rows are live.
#[derive(Debug, Clone)]
pub struct BlockTable {
    blocks: Vec<usize>,
    tokens: usize,
    /// Leading blocks attached via the prefix index (refcount-shared).
    sealed: usize,
    /// Running chain hash over the sealed prefix (`FNV_OFFSET` when none).
    chain: u64,
}

impl Default for BlockTable {
    fn default() -> Self {
        BlockTable {
            blocks: Vec::new(),
            tokens: 0,
            sealed: 0,
            chain: FNV_OFFSET,
        }
    }
}

impl BlockTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        BlockTable::default()
    }

    /// Live token rows.
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Blocks currently held.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Leading blocks that are refcount-shared through the prefix index.
    #[must_use]
    pub fn sealed_blocks(&self) -> usize {
        self.sealed
    }
}

/// One physical cache block: `block_tokens` K rows and V rows at the
/// execution width.
#[derive(Debug, Clone)]
struct Block {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// The physical pool: every block pre-allocated, recycled through a free
/// list. Blocks are handed to requests via their [`BlockTable`]s and
/// returned wholesale on release or preemption.
///
/// # Example
///
/// ```
/// use flat_serve::{BlockTable, KvPool};
///
/// let mut pool = KvPool::new(2, 4, 2);
/// let mut table = BlockTable::new();
/// for t in 0..8 {
///     assert!(pool.try_append(&mut table, &[t as f32; 2], &[0.5; 2]));
/// }
/// // Both blocks in use: a ninth token needs a third block and fails.
/// assert!(!pool.try_append(&mut table, &[9.0; 2], &[0.5; 2]));
/// assert_eq!(pool.free_blocks(), 0);
/// pool.release(&mut table);
/// assert_eq!(pool.free_blocks(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KvPool {
    block_tokens: usize,
    dk: usize,
    blocks: Vec<Block>,
    free: Vec<usize>,
    /// Blocks confiscated by the fault injector: permanently removed from
    /// circulation (ids stay valid so live tables are unaffected).
    quarantined: usize,
    peak_used: usize,
    /// Per-block reference count: 0 = free, 1 = private, >1 = shared
    /// through the prefix index (copy-on-write).
    refs: Vec<u32>,
    /// Chain hash under which a block is published in `prefix_index`
    /// (`None` for private/free blocks) — kept so release can unpublish.
    seal_hash: Vec<Option<u64>>,
    /// Content-addressed directory of sealed full prefix blocks:
    /// chain hash → block id.
    prefix_index: HashMap<u64, usize>,
    /// Seal calls that attached to an already-resident shared block.
    dedup_hits: u64,
    /// Blocks mapped by live tables counting shared blocks once *per
    /// sharer* — what a dedup-off pool would have to hold physically.
    logical_used: usize,
    peak_logical: usize,
}

impl KvPool {
    /// A pool of `total_blocks` blocks of `block_tokens` rows at
    /// execution width `dk`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(total_blocks: usize, block_tokens: usize, dk: usize) -> Self {
        assert!(
            total_blocks > 0 && block_tokens > 0 && dk > 0,
            "pool dimensions must be positive"
        );
        let blocks = (0..total_blocks)
            .map(|_| Block {
                k: vec![0.0; block_tokens * dk],
                v: vec![0.0; block_tokens * dk],
            })
            .collect();
        // Pop order: lowest id first (purely cosmetic; any order works).
        let free = (0..total_blocks).rev().collect();
        KvPool {
            block_tokens,
            dk,
            blocks,
            free,
            quarantined: 0,
            peak_used: 0,
            refs: vec![0; total_blocks],
            seal_hash: vec![None; total_blocks],
            prefix_index: HashMap::new(),
            dedup_hits: 0,
            logical_used: 0,
            peak_logical: 0,
        }
    }

    /// Total blocks in the pool (quarantined blocks excluded).
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.blocks.len() - self.quarantined
    }

    /// Blocks on the free list.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently held by block tables.
    #[must_use]
    pub fn used_blocks(&self) -> usize {
        self.blocks.len() - self.quarantined - self.free.len()
    }

    /// Permanently removes up to `n` *free* blocks from circulation — the
    /// fault injector's mid-run capacity loss. Blocks held by live tables
    /// are never touched, and at least one block always survives so a
    /// pool keeps existing. Returns how many blocks were taken.
    pub fn confiscate(&mut self, n: usize) -> usize {
        let mut taken = 0;
        while taken < n && self.total_blocks() > 1 && !self.free.is_empty() {
            self.free.pop();
            self.quarantined += 1;
            taken += 1;
        }
        taken
    }

    /// High-water mark of [`used_blocks`](Self::used_blocks).
    #[must_use]
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Appends one token's K/V rows to `table`, allocating a fresh block
    /// when the last one is full. Returns `false` — leaving the pool and
    /// table untouched — if the pool is exhausted; the scheduler then
    /// preempts to make room.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not `dk` long.
    #[must_use]
    pub fn try_append(&mut self, table: &mut BlockTable, k: &[f32], v: &[f32]) -> bool {
        assert_eq!(k.len(), self.dk, "key row width must match the pool");
        assert_eq!(v.len(), self.dk, "value row width must match the pool");
        let slot = table.tokens % self.block_tokens;
        if slot == 0 {
            let Some(id) = self.free.pop() else {
                return false;
            };
            self.refs[id] = 1;
            table.blocks.push(id);
            self.peak_used = self.peak_used.max(self.used_blocks());
            self.logical_used += 1;
            self.peak_logical = self.peak_logical.max(self.logical_used);
        }
        // Non-empty by construction: slot 0 just allocated, later slots
        // inherit the block; guarded rather than unwrapped so a corrupted
        // table degrades into backpressure instead of a panic.
        let Some(&id) = table.blocks.last() else {
            return false;
        };
        // Sealed blocks are full, so `slot == 0` always allocates a fresh
        // private block before any row is written: copy-on-write forking
        // never mutates shared storage.
        debug_assert_eq!(self.refs[id], 1, "writes only land in private blocks");
        let at = slot * self.dk;
        self.blocks[id].k[at..at + self.dk].copy_from_slice(k);
        self.blocks[id].v[at..at + self.dk].copy_from_slice(v);
        table.tokens += 1;
        true
    }

    /// Drops `table`'s reference on every block it maps and empties it.
    /// A block returns to the free list only when its refcount reaches
    /// zero, so releasing (or preempting) one sharer of a prefix block
    /// never frees storage another request still maps.
    pub fn release(&mut self, table: &mut BlockTable) {
        self.logical_used -= table.blocks.len();
        for id in table.blocks.drain(..) {
            debug_assert!(self.refs[id] > 0, "release of an unowned block");
            self.refs[id] -= 1;
            if self.refs[id] == 0 {
                if let Some(h) = self.seal_hash[id].take() {
                    // Unpublish only our own entry: a hash slot is owned by
                    // exactly one block id at a time.
                    if self.prefix_index.get(&h) == Some(&id) {
                        self.prefix_index.remove(&h);
                    }
                }
                self.free.push(id);
            }
        }
        table.tokens = 0;
        table.sealed = 0;
        table.chain = FNV_OFFSET;
    }

    /// Seals `table`'s last block into the prefix index. Call only when
    /// that block has just been filled with tokens that are part of a
    /// shared prompt prefix.
    ///
    /// Extends the table's chain hash over the block's content, then
    /// either (a) swaps the freshly written private block for an
    /// already-published identical block — incrementing that block's
    /// refcount and freeing the private copy (a *dedup hit*) — or
    /// (b) publishes this block under the chain hash so later requests
    /// can share it. Content is compared word-for-word on a hash match,
    /// so a (vanishingly unlikely) collision degrades to "no sharing",
    /// never to wrong rows. Returns `true` on a dedup hit.
    pub fn seal_last_block(&mut self, table: &mut BlockTable) -> bool {
        let Some(&id) = table.blocks.last() else {
            return false;
        };
        if !table.tokens.is_multiple_of(self.block_tokens) || table.sealed + 1 != table.blocks.len()
        {
            // Only full blocks immediately following the sealed prefix are
            // shareable; anything else would let appends land in shared
            // storage.
            return false;
        }
        let h = chain_hash(table.chain, &self.blocks[id].k, &self.blocks[id].v);
        table.chain = h;
        if let Some(&shared) = self.prefix_index.get(&h) {
            if shared != id
                && self.blocks[shared].k == self.blocks[id].k
                && self.blocks[shared].v == self.blocks[id].v
            {
                self.refs[shared] += 1;
                self.refs[id] = 0;
                self.free.push(id);
                if let Some(last) = table.blocks.last_mut() {
                    *last = shared;
                }
                table.sealed += 1;
                self.dedup_hits += 1;
                return true;
            }
            // Collision or self-hit: leave the block private and unlisted.
            table.sealed += 1;
            return false;
        }
        self.prefix_index.insert(h, id);
        self.seal_hash[id] = Some(h);
        table.sealed += 1;
        false
    }

    /// Adds `n` fresh zeroed blocks to the pool — the elastic scale-up
    /// path. New ids extend the id space; existing tables are unaffected.
    pub fn grow(&mut self, n: usize) {
        for _ in 0..n {
            let id = self.blocks.len();
            self.blocks.push(Block {
                k: vec![0.0; self.block_tokens * self.dk],
                v: vec![0.0; self.block_tokens * self.dk],
            });
            self.refs.push(0);
            self.seal_hash.push(None);
            self.free.push(id);
        }
    }

    /// Seal operations that attached to an already-resident shared block.
    #[must_use]
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Blocks live tables map, counting shared blocks once per sharer —
    /// the physical footprint a dedup-off pool would need right now.
    #[must_use]
    pub fn logical_used_blocks(&self) -> usize {
        self.logical_used
    }

    /// High-water mark of [`logical_used_blocks`](Self::logical_used_blocks).
    #[must_use]
    pub fn peak_logical(&self) -> usize {
        self.peak_logical
    }

    /// Current refcount of a block (0 = free). Test/diagnostic hook.
    #[must_use]
    pub fn refcount(&self, id: usize) -> u32 {
        self.refs.get(id).copied().unwrap_or(0)
    }

    /// The `(key, value)` rows of a request in token order — the exact
    /// iterator [`flat_kernels::decode_attention`] consumes.
    pub fn rows<'a>(
        &'a self,
        table: &'a BlockTable,
    ) -> impl Iterator<Item = (&'a [f32], &'a [f32])> {
        let (bt, dk) = (self.block_tokens, self.dk);
        (0..table.tokens).map(move |t| {
            let id = table.blocks[t / bt];
            let at = (t % bt) * dk;
            (
                &self.blocks[id].k[at..at + dk],
                &self.blocks[id].v[at..at + dk],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_accounts_all_layers() {
        let m = Model::by_name("xlm").unwrap();
        let l = KvLayout::for_model(&m, 16);
        assert_eq!(l.bytes_per_token.as_u64(), 2 * m.hidden() * 2 * m.blocks());
        assert_eq!(l.blocks_for(0), 0);
        assert_eq!(l.blocks_for(16), 1);
        assert_eq!(l.blocks_for(33), 3);
    }

    #[test]
    fn budget_yields_whole_blocks() {
        let l = KvLayout {
            block_tokens: 4,
            bytes_per_token: Bytes::new(1024),
        };
        assert_eq!(l.blocks_in_budget(Bytes::new(4096 * 3 + 100)), 3);
        // Degenerate budgets still admit one block so a pool can exist.
        assert_eq!(l.blocks_in_budget(Bytes::new(10)), 1);
    }

    #[test]
    fn append_crosses_block_boundaries() {
        let mut pool = KvPool::new(3, 2, 4);
        let mut t = BlockTable::new();
        for i in 0..5 {
            assert!(pool.try_append(&mut t, &[i as f32; 4], &[-(i as f32); 4]));
        }
        assert_eq!(t.block_count(), 3);
        assert_eq!(pool.free_blocks(), 0);
        let rows: Vec<_> = pool.rows(&t).collect();
        assert_eq!(rows.len(), 5);
        for (i, (k, v)) in rows.iter().enumerate() {
            assert_eq!(k[0], i as f32);
            assert_eq!(v[0], -(i as f32));
        }
    }

    #[test]
    fn exhaustion_leaves_state_unchanged() {
        let mut pool = KvPool::new(1, 2, 1);
        let mut a = BlockTable::new();
        assert!(pool.try_append(&mut a, &[1.0], &[1.0]));
        assert!(pool.try_append(&mut a, &[2.0], &[2.0]));
        let mut b = BlockTable::new();
        assert!(!pool.try_append(&mut b, &[3.0], &[3.0]));
        assert_eq!(b.tokens(), 0);
        assert_eq!(b.block_count(), 0);
        assert_eq!(pool.rows(&a).count(), 2);
    }

    #[test]
    fn release_recycles_blocks_for_new_tables() {
        let mut pool = KvPool::new(2, 2, 1);
        let mut a = BlockTable::new();
        for _ in 0..4 {
            assert!(pool.try_append(&mut a, &[0.0], &[0.0]));
        }
        assert_eq!(pool.peak_used(), 2);
        pool.release(&mut a);
        assert_eq!(a.tokens(), 0);
        assert_eq!(pool.free_blocks(), 2);
        let mut b = BlockTable::new();
        for _ in 0..4 {
            assert!(pool.try_append(&mut b, &[1.0], &[1.0]));
        }
        assert_eq!(pool.peak_used(), 2);
    }

    #[test]
    fn confiscation_shrinks_capacity_but_spares_live_tables() {
        let mut pool = KvPool::new(4, 2, 1);
        let mut a = BlockTable::new();
        for _ in 0..4 {
            assert!(pool.try_append(&mut a, &[1.0], &[1.0]));
        }
        // 2 blocks live, 2 free: confiscation can only take the free ones,
        // and must leave at least one block of total capacity.
        assert_eq!(pool.confiscate(10), 2);
        assert_eq!(pool.total_blocks(), 2);
        assert_eq!(pool.free_blocks(), 0);
        assert_eq!(pool.used_blocks(), 2);
        // The live table still reads back intact.
        assert_eq!(pool.rows(&a).count(), 4);
        // Released blocks recirculate, but capacity stays shrunk — except
        // the floor: the last block can never be confiscated.
        pool.release(&mut a);
        assert_eq!(pool.confiscate(10), 1);
        assert_eq!(pool.total_blocks(), 1);
        assert_eq!(pool.free_blocks(), 1);
    }

    /// Appends `n` tokens whose rows are a deterministic function of the
    /// token position (identical across tables — a shared prefix).
    fn append_prefix(pool: &mut KvPool, t: &mut BlockTable, n: usize, dk: usize) {
        for i in 0..n {
            let row = vec![i as f32 + 0.25; dk];
            if !pool.try_append(t, &row, &row) {
                return; // Backpressure: the churn proptest exhausts the pool.
            }
            if t.tokens().is_multiple_of(pool.block_tokens()) {
                pool.seal_last_block(t);
            }
        }
    }

    #[test]
    fn identical_prefixes_share_physical_blocks() {
        let mut pool = KvPool::new(8, 2, 3);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        append_prefix(&mut pool, &mut a, 4, 3);
        assert_eq!(pool.dedup_hits(), 0);
        append_prefix(&mut pool, &mut b, 4, 3);
        // b's two blocks dedup onto a's: 2 physical, 4 logical.
        assert_eq!(pool.dedup_hits(), 2);
        assert_eq!(pool.used_blocks(), 2);
        assert_eq!(pool.logical_used_blocks(), 4);
        assert_eq!(a.sealed_blocks(), 2);
        assert_eq!(b.sealed_blocks(), 2);
        // Both tables read identical rows.
        let ra: Vec<_> = pool.rows(&a).map(|(k, _)| k[0]).collect();
        let rb: Vec<_> = pool.rows(&b).map(|(k, _)| k[0]).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn divergent_tokens_fork_into_private_blocks() {
        let mut pool = KvPool::new(8, 2, 1);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        append_prefix(&mut pool, &mut a, 2, 1);
        append_prefix(&mut pool, &mut b, 2, 1);
        assert_eq!(pool.used_blocks(), 1);
        // Divergence: each request appends its own token past the prefix.
        assert!(pool.try_append(&mut a, &[7.0], &[7.0]));
        assert!(pool.try_append(&mut b, &[9.0], &[9.0]));
        assert_eq!(pool.used_blocks(), 3, "forks are private");
        let ka: Vec<_> = pool.rows(&a).map(|(k, _)| k[0]).collect();
        let kb: Vec<_> = pool.rows(&b).map(|(k, _)| k[0]).collect();
        assert_eq!(ka, vec![0.25, 1.25, 7.0]);
        assert_eq!(kb, vec![0.25, 1.25, 9.0]);
    }

    #[test]
    fn releasing_one_sharer_keeps_blocks_mapped_by_the_other() {
        let mut pool = KvPool::new(4, 2, 1);
        let mut a = BlockTable::new();
        let mut b = BlockTable::new();
        append_prefix(&mut pool, &mut a, 4, 1);
        append_prefix(&mut pool, &mut b, 4, 1);
        assert_eq!(pool.used_blocks(), 2);
        pool.release(&mut a);
        // b still maps both blocks; nothing returned to the free list.
        assert_eq!(pool.used_blocks(), 2);
        let kb: Vec<_> = pool.rows(&b).map(|(k, _)| k[0]).collect();
        assert_eq!(kb, vec![0.25, 1.25, 2.25, 3.25]);
        // A third request can still attach to the published prefix.
        let mut c = BlockTable::new();
        append_prefix(&mut pool, &mut c, 4, 1);
        assert_eq!(pool.used_blocks(), 2);
        pool.release(&mut b);
        pool.release(&mut c);
        assert_eq!(pool.used_blocks(), 0);
        assert_eq!(pool.free_blocks(), 4);
    }

    #[test]
    fn refzero_unpublishes_and_recycles_shared_blocks() {
        let mut pool = KvPool::new(2, 2, 1);
        let mut a = BlockTable::new();
        append_prefix(&mut pool, &mut a, 2, 1);
        pool.release(&mut a);
        assert_eq!(pool.free_blocks(), 2);
        // The prefix is gone from the index: a new identical prefix
        // re-publishes (no stale hit onto freed storage).
        let mut b = BlockTable::new();
        append_prefix(&mut pool, &mut b, 2, 1);
        assert_eq!(pool.dedup_hits(), 0);
        assert_eq!(pool.rows(&b).count(), 2);
    }

    #[test]
    fn grow_extends_capacity_without_touching_live_tables() {
        let mut pool = KvPool::new(1, 2, 1);
        let mut a = BlockTable::new();
        assert!(pool.try_append(&mut a, &[1.0], &[1.0]));
        let mut b = BlockTable::new();
        assert!(!pool.try_append(&mut b, &[2.0], &[2.0]));
        pool.grow(2);
        assert_eq!(pool.total_blocks(), 3);
        assert!(pool.try_append(&mut b, &[2.0], &[2.0]));
        assert_eq!(pool.rows(&a).next().map(|(k, _)| k[0]), Some(1.0));
    }

    use proptest::prelude::*;

    proptest! {
        /// Free-list hardening (the invariant COW refcounting depends on):
        /// any interleaving of appends, prefix seals, releases (preempt-by-
        /// recompute uses this exact path), and confiscations keeps the
        /// accounting exact — no double-free, no leaked blocks, and the
        /// occupancy gauge returns to baseline once every table releases.
        #[test]
        fn pool_conserves_blocks_under_churn(
            ops in proptest::collection::vec((0u8..4, 0usize..6, 0usize..40), 1..120),
        ) {
            let (blocks, bt, dk) = (12, 2, 2);
            let mut pool = KvPool::new(blocks, bt, dk);
            let mut tables: Vec<BlockTable> = (0..6).map(|_| BlockTable::new()).collect();
            let mut confiscated = 0;
            for (op, who, n) in ops {
                let t = &mut tables[who];
                match op {
                    // Shared-prefix appends (deduplicable across tables).
                    0 => append_prefix(&mut pool, t, n % 9, dk),
                    // Private appends: rows keyed by table id diverge.
                    1 => for i in 0..n % 9 {
                        let row = vec![(who * 100 + i) as f32; dk];
                        let _ = pool.try_append(t, &row, &row);
                    },
                    // Preempt-by-recompute: release, then later re-append.
                    2 => pool.release(t),
                    _ => confiscated += pool.confiscate(n % 3),
                }
                // Conservation at every step: free + used + quarantined
                // covers the id space exactly.
                prop_assert_eq!(
                    pool.free_blocks() + pool.used_blocks(),
                    blocks - confiscated
                );
                // Logical never undercounts physical.
                prop_assert!(pool.logical_used_blocks() >= pool.used_blocks());
                let mapped: usize = tables.iter().map(BlockTable::block_count).sum();
                prop_assert_eq!(pool.logical_used_blocks(), mapped);
            }
            // Occupancy returns to baseline: releasing every table leaves
            // zero used blocks and a full free list.
            for t in &mut tables {
                pool.release(t);
            }
            prop_assert_eq!(pool.used_blocks(), 0);
            prop_assert_eq!(pool.logical_used_blocks(), 0);
            prop_assert_eq!(pool.free_blocks(), blocks - confiscated);
        }

        /// Every table always reads back exactly the rows it appended,
        /// regardless of how prefixes dedup across tables — token-identity
        /// of the COW path at the storage layer.
        #[test]
        fn shared_and_private_rows_never_cross(
            shared in 0usize..10,
            div in proptest::collection::vec(0usize..7, 2..5),
        ) {
            let dk = 2;
            let mut pool = KvPool::new(64, 2, dk);
            let mut tables: Vec<BlockTable> = div.iter().map(|_| BlockTable::new()).collect();
            for (who, (t, &extra)) in tables.iter_mut().zip(div.iter()).enumerate() {
                append_prefix(&mut pool, t, shared, dk);
                for i in 0..extra {
                    let row = vec![(1000 + who * 10 + i) as f32; dk];
                    prop_assert!(pool.try_append(t, &row, &row));
                }
            }
            for (who, (t, &extra)) in tables.iter().zip(div.iter()).enumerate() {
                let got: Vec<f32> = pool.rows(t).map(|(k, _)| k[0]).collect();
                prop_assert_eq!(got.len(), shared + extra);
                for (i, &x) in got.iter().enumerate() {
                    let want = if i < shared {
                        i as f32 + 0.25
                    } else {
                        (1000 + who * 10 + (i - shared)) as f32
                    };
                    prop_assert_eq!(x, want);
                }
            }
        }
    }
}
