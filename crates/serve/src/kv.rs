//! The paged KV-cache: fixed-size token blocks, a free list, and
//! per-request block tables.
//!
//! Serving keeps one K and one V row per *token* per request alive for the
//! whole lifetime of the request — the dominant memory consumer of an
//! inference engine. Paging (vLLM-style) allocates that storage in
//! fixed-size blocks of `block_tokens` rows so that requests grow without
//! reserving their worst case up front and freed memory never fragments:
//! any free block serves any request.
//!
//! Two layers live here:
//!
//! * [`KvLayout`] — *accounting*: how many modeled bytes one token of KV
//!   state costs for a given [`Model`] (all layers, all heads, 16-bit
//!   elements), and how many blocks a budget drawn from the accelerator's
//!   modeled off-chip memory affords.
//! * [`KvPool`] / [`BlockTable`] — *storage*: the actual f32 rows the
//!   decode kernel reads, held at the engine's reduced execution width
//!   (one representative head), plus alloc/free bookkeeping.

use flat_tensor::Bytes;
use flat_workloads::Model;

/// Modeled KV-cache cost of one token, and the paging geometry.
///
/// # Example
///
/// ```
/// use flat_serve::KvLayout;
/// use flat_workloads::Model;
///
/// let layout = KvLayout::for_model(&Model::by_name("bert").unwrap(), 16);
/// // 2 tensors × hidden × 2 bytes × layers.
/// assert_eq!(layout.bytes_per_token.as_u64(), 2 * 768 * 2 * 12);
/// assert_eq!(layout.blocks_for(17), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    /// Tokens per cache block.
    pub block_tokens: usize,
    /// Modeled bytes of KV state per token: K and V, every layer, the
    /// full hidden width, 16-bit elements.
    pub bytes_per_token: Bytes,
}

impl KvLayout {
    /// Element width of the modeled cache (fp16/bf16 serving default).
    pub const ELEM_BYTES: u64 = 2;

    /// The layout for a model: `2 × hidden × 2 B × layers` per token.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    #[must_use]
    pub fn for_model(model: &Model, block_tokens: usize) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        let per_token = 2 * model.hidden() * Self::ELEM_BYTES * model.blocks();
        KvLayout {
            block_tokens,
            bytes_per_token: Bytes::new(per_token),
        }
    }

    /// Blocks needed to hold `tokens` rows (ceiling division).
    #[must_use]
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Modeled bytes of one block.
    #[must_use]
    pub fn block_bytes(&self) -> Bytes {
        self.bytes_per_token * self.block_tokens as u64
    }

    /// How many whole blocks a memory budget affords (at least one).
    #[must_use]
    pub fn blocks_in_budget(&self, budget: Bytes) -> usize {
        ((budget.as_u64() / self.block_bytes().as_u64()) as usize).max(1)
    }
}

/// A request's view into the pool: the ordered list of block ids holding
/// its tokens, plus how many token rows are live.
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    blocks: Vec<usize>,
    tokens: usize,
}

impl BlockTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        BlockTable::default()
    }

    /// Live token rows.
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Blocks currently held.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// One physical cache block: `block_tokens` K rows and V rows at the
/// execution width.
#[derive(Debug, Clone)]
struct Block {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// The physical pool: every block pre-allocated, recycled through a free
/// list. Blocks are handed to requests via their [`BlockTable`]s and
/// returned wholesale on release or preemption.
///
/// # Example
///
/// ```
/// use flat_serve::{BlockTable, KvPool};
///
/// let mut pool = KvPool::new(2, 4, 2);
/// let mut table = BlockTable::new();
/// for t in 0..8 {
///     assert!(pool.try_append(&mut table, &[t as f32; 2], &[0.5; 2]));
/// }
/// // Both blocks in use: a ninth token needs a third block and fails.
/// assert!(!pool.try_append(&mut table, &[9.0; 2], &[0.5; 2]));
/// assert_eq!(pool.free_blocks(), 0);
/// pool.release(&mut table);
/// assert_eq!(pool.free_blocks(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KvPool {
    block_tokens: usize,
    dk: usize,
    blocks: Vec<Block>,
    free: Vec<usize>,
    /// Blocks confiscated by the fault injector: permanently removed from
    /// circulation (ids stay valid so live tables are unaffected).
    quarantined: usize,
    peak_used: usize,
}

impl KvPool {
    /// A pool of `total_blocks` blocks of `block_tokens` rows at
    /// execution width `dk`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(total_blocks: usize, block_tokens: usize, dk: usize) -> Self {
        assert!(
            total_blocks > 0 && block_tokens > 0 && dk > 0,
            "pool dimensions must be positive"
        );
        let blocks = (0..total_blocks)
            .map(|_| Block {
                k: vec![0.0; block_tokens * dk],
                v: vec![0.0; block_tokens * dk],
            })
            .collect();
        // Pop order: lowest id first (purely cosmetic; any order works).
        let free = (0..total_blocks).rev().collect();
        KvPool {
            block_tokens,
            dk,
            blocks,
            free,
            quarantined: 0,
            peak_used: 0,
        }
    }

    /// Total blocks in the pool (quarantined blocks excluded).
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.blocks.len() - self.quarantined
    }

    /// Blocks on the free list.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently held by block tables.
    #[must_use]
    pub fn used_blocks(&self) -> usize {
        self.blocks.len() - self.quarantined - self.free.len()
    }

    /// Permanently removes up to `n` *free* blocks from circulation — the
    /// fault injector's mid-run capacity loss. Blocks held by live tables
    /// are never touched, and at least one block always survives so a
    /// pool keeps existing. Returns how many blocks were taken.
    pub fn confiscate(&mut self, n: usize) -> usize {
        let mut taken = 0;
        while taken < n && self.total_blocks() > 1 && !self.free.is_empty() {
            self.free.pop();
            self.quarantined += 1;
            taken += 1;
        }
        taken
    }

    /// High-water mark of [`used_blocks`](Self::used_blocks).
    #[must_use]
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Appends one token's K/V rows to `table`, allocating a fresh block
    /// when the last one is full. Returns `false` — leaving the pool and
    /// table untouched — if the pool is exhausted; the scheduler then
    /// preempts to make room.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not `dk` long.
    #[must_use]
    pub fn try_append(&mut self, table: &mut BlockTable, k: &[f32], v: &[f32]) -> bool {
        assert_eq!(k.len(), self.dk, "key row width must match the pool");
        assert_eq!(v.len(), self.dk, "value row width must match the pool");
        let slot = table.tokens % self.block_tokens;
        if slot == 0 {
            let Some(id) = self.free.pop() else {
                return false;
            };
            table.blocks.push(id);
            self.peak_used = self.peak_used.max(self.used_blocks());
        }
        // Non-empty by construction: slot 0 just allocated, later slots
        // inherit the block; guarded rather than unwrapped so a corrupted
        // table degrades into backpressure instead of a panic.
        let Some(&id) = table.blocks.last() else {
            return false;
        };
        let at = slot * self.dk;
        self.blocks[id].k[at..at + self.dk].copy_from_slice(k);
        self.blocks[id].v[at..at + self.dk].copy_from_slice(v);
        table.tokens += 1;
        true
    }

    /// Returns every block of `table` to the free list and empties it.
    pub fn release(&mut self, table: &mut BlockTable) {
        self.free.append(&mut table.blocks);
        table.tokens = 0;
    }

    /// The `(key, value)` rows of a request in token order — the exact
    /// iterator [`flat_kernels::decode_attention`] consumes.
    pub fn rows<'a>(
        &'a self,
        table: &'a BlockTable,
    ) -> impl Iterator<Item = (&'a [f32], &'a [f32])> {
        let (bt, dk) = (self.block_tokens, self.dk);
        (0..table.tokens).map(move |t| {
            let id = table.blocks[t / bt];
            let at = (t % bt) * dk;
            (
                &self.blocks[id].k[at..at + dk],
                &self.blocks[id].v[at..at + dk],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_accounts_all_layers() {
        let m = Model::by_name("xlm").unwrap();
        let l = KvLayout::for_model(&m, 16);
        assert_eq!(l.bytes_per_token.as_u64(), 2 * m.hidden() * 2 * m.blocks());
        assert_eq!(l.blocks_for(0), 0);
        assert_eq!(l.blocks_for(16), 1);
        assert_eq!(l.blocks_for(33), 3);
    }

    #[test]
    fn budget_yields_whole_blocks() {
        let l = KvLayout {
            block_tokens: 4,
            bytes_per_token: Bytes::new(1024),
        };
        assert_eq!(l.blocks_in_budget(Bytes::new(4096 * 3 + 100)), 3);
        // Degenerate budgets still admit one block so a pool can exist.
        assert_eq!(l.blocks_in_budget(Bytes::new(10)), 1);
    }

    #[test]
    fn append_crosses_block_boundaries() {
        let mut pool = KvPool::new(3, 2, 4);
        let mut t = BlockTable::new();
        for i in 0..5 {
            assert!(pool.try_append(&mut t, &[i as f32; 4], &[-(i as f32); 4]));
        }
        assert_eq!(t.block_count(), 3);
        assert_eq!(pool.free_blocks(), 0);
        let rows: Vec<_> = pool.rows(&t).collect();
        assert_eq!(rows.len(), 5);
        for (i, (k, v)) in rows.iter().enumerate() {
            assert_eq!(k[0], i as f32);
            assert_eq!(v[0], -(i as f32));
        }
    }

    #[test]
    fn exhaustion_leaves_state_unchanged() {
        let mut pool = KvPool::new(1, 2, 1);
        let mut a = BlockTable::new();
        assert!(pool.try_append(&mut a, &[1.0], &[1.0]));
        assert!(pool.try_append(&mut a, &[2.0], &[2.0]));
        let mut b = BlockTable::new();
        assert!(!pool.try_append(&mut b, &[3.0], &[3.0]));
        assert_eq!(b.tokens(), 0);
        assert_eq!(b.block_count(), 0);
        assert_eq!(pool.rows(&a).count(), 2);
    }

    #[test]
    fn release_recycles_blocks_for_new_tables() {
        let mut pool = KvPool::new(2, 2, 1);
        let mut a = BlockTable::new();
        for _ in 0..4 {
            assert!(pool.try_append(&mut a, &[0.0], &[0.0]));
        }
        assert_eq!(pool.peak_used(), 2);
        pool.release(&mut a);
        assert_eq!(a.tokens(), 0);
        assert_eq!(pool.free_blocks(), 2);
        let mut b = BlockTable::new();
        for _ in 0..4 {
            assert!(pool.try_append(&mut b, &[1.0], &[1.0]));
        }
        assert_eq!(pool.peak_used(), 2);
    }

    #[test]
    fn confiscation_shrinks_capacity_but_spares_live_tables() {
        let mut pool = KvPool::new(4, 2, 1);
        let mut a = BlockTable::new();
        for _ in 0..4 {
            assert!(pool.try_append(&mut a, &[1.0], &[1.0]));
        }
        // 2 blocks live, 2 free: confiscation can only take the free ones,
        // and must leave at least one block of total capacity.
        assert_eq!(pool.confiscate(10), 2);
        assert_eq!(pool.total_blocks(), 2);
        assert_eq!(pool.free_blocks(), 0);
        assert_eq!(pool.used_blocks(), 2);
        // The live table still reads back intact.
        assert_eq!(pool.rows(&a).count(), 4);
        // Released blocks recirculate, but capacity stays shrunk — except
        // the floor: the last block can never be confiscated.
        pool.release(&mut a);
        assert_eq!(pool.confiscate(10), 1);
        assert_eq!(pool.total_blocks(), 1);
        assert_eq!(pool.free_blocks(), 1);
    }
}
