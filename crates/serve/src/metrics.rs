//! Serving metrics: per-request latency percentiles, throughput, and
//! KV-pool pressure, exported as JSON for the bench snapshots.

use crate::request::Request;
use serde::Serialize;

/// Latency summary in milliseconds, nearest-rank percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

impl Percentiles {
    /// Summarizes a set of samples; all-zero when empty.
    #[must_use]
    pub fn of(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return Percentiles { p50_ms: 0.0, p95_ms: 0.0, p99_ms: 0.0, mean_ms: 0.0, max_ms: 0.0 };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let at = |p: f64| {
            // Nearest-rank: ceil(p·n) clamped into the sample range.
            let rank = (p * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Percentiles {
            p50_ms: at(0.50),
            p95_ms: at(0.95),
            p99_ms: at(0.99),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            max_ms: *samples.last().expect("nonempty"),
        }
    }
}

/// KV-pool pressure over the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvPoolStats {
    /// Blocks in the pool.
    pub total_blocks: usize,
    /// Tokens per block.
    pub block_tokens: usize,
    /// Modeled bytes of KV state per token (all layers, fp16).
    pub bytes_per_token: u64,
    /// High-water mark of blocks in use.
    pub peak_used_blocks: usize,
    /// Time-weighted mean fraction of the pool in use.
    pub mean_occupancy: f64,
    /// Peak fraction of the pool in use.
    pub peak_occupancy: f64,
}

/// The full metrics report of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeMetrics {
    /// Requests offered to the engine.
    pub requests: usize,
    /// Requests that ran to completion (must equal `requests`).
    pub finished: usize,
    /// Preempt-and-recompute evictions under KV pressure.
    pub preemptions: u64,
    /// Engine virtual time from first arrival to last completion.
    pub makespan_ms: f64,
    /// Scheduler iterations executed.
    pub ticks: u64,
    /// Prompt tokens ingested.
    pub prefill_tokens: u64,
    /// Output tokens generated.
    pub decode_tokens: u64,
    /// Generated tokens per second of engine time.
    pub decode_tokens_per_s: f64,
    /// Time to first token.
    pub ttft: Percentiles,
    /// Time per output token after the first.
    pub tpot: Percentiles,
    /// End-to-end request latency.
    pub e2e: Percentiles,
    /// KV-pool pressure.
    pub kv: KvPoolStats,
    /// Sum of every request's final attention output — the numeric
    /// plane's fingerprint. Two runs agree on this iff they executed the
    /// same tokens through the same kernels in the same order.
    pub checksum: f64,
}

impl ServeMetrics {
    /// Collates finished requests into the report.
    #[must_use]
    pub fn collate(
        requests: &[Request],
        kv: KvPoolStats,
        makespan_ms: f64,
        ticks: u64,
        prefill_tokens: u64,
    ) -> Self {
        let finished = requests.iter().filter(|r| r.finish_ms.is_some()).count();
        let decode_tokens: u64 = requests.iter().map(|r| r.generated as u64).sum();
        let collect = |f: &dyn Fn(&Request) -> Option<f64>| -> Vec<f64> {
            requests.iter().filter_map(f).collect()
        };
        ServeMetrics {
            requests: requests.len(),
            finished,
            preemptions: requests.iter().map(|r| r.preemptions).sum(),
            makespan_ms,
            ticks,
            prefill_tokens,
            decode_tokens,
            decode_tokens_per_s: if makespan_ms > 0.0 {
                decode_tokens as f64 / (makespan_ms / 1e3)
            } else {
                0.0
            },
            ttft: Percentiles::of(collect(&Request::ttft_ms)),
            tpot: Percentiles::of(collect(&Request::tpot_ms)),
            e2e: Percentiles::of(collect(&Request::e2e_ms)),
            kv,
            checksum: requests
                .iter()
                .flat_map(|r| &r.last_out)
                .map(|&x| f64::from(x))
                .sum(),
        }
    }

    /// The metrics as a pretty JSON string (the `--json` CLI output and
    /// the determinism test's comparison key).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_samples() {
        let p = Percentiles::of((1..=100).map(f64::from).collect());
        assert_eq!(p.p50_ms, 50.0);
        assert_eq!(p.p95_ms, 95.0);
        assert_eq!(p.p99_ms, 99.0);
        assert_eq!(p.max_ms, 100.0);
        assert!((p.mean_ms - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let p = Percentiles::of(vec![7.0]);
        assert_eq!((p.p50_ms, p.p95_ms, p.p99_ms, p.max_ms), (7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn empty_samples_are_all_zero() {
        let p = Percentiles::of(Vec::new());
        assert_eq!(p.mean_ms, 0.0);
        assert_eq!(p.max_ms, 0.0);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let kv = KvPoolStats {
            total_blocks: 8,
            block_tokens: 16,
            bytes_per_token: 1024,
            peak_used_blocks: 6,
            mean_occupancy: 0.5,
            peak_occupancy: 0.75,
        };
        let m = ServeMetrics::collate(&[], kv, 100.0, 10, 0);
        let json = m.to_json();
        assert!(json.contains("\"decode_tokens_per_s\""));
        assert!(json.contains("\"peak_used_blocks\": 6"));
    }
}
