//! Serving metrics: per-request latency percentiles, throughput,
//! drop-reason accounting, and KV-pool pressure, exported as JSON for the
//! bench snapshots.

use crate::error::DropReason;
use crate::request::Request;
use serde::Serialize;

/// Latency summary in milliseconds, nearest-rank percentiles.
///
/// Non-finite samples (the fault injector can produce them, and a buggy
/// clock could too) are *excluded* from every statistic and counted in
/// [`nonfinite`](Self::nonfinite) instead of poisoning the sort or the
/// mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Samples excluded for being NaN or infinite.
    pub nonfinite: usize,
}

impl Percentiles {
    /// Summarizes a set of samples; all-zero when empty (or when every
    /// sample was non-finite).
    #[must_use]
    pub fn of(samples: Vec<f64>) -> Self {
        let total = samples.len();
        let mut finite: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        let nonfinite = total - finite.len();
        if finite.is_empty() {
            return Percentiles {
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                mean_ms: 0.0,
                max_ms: 0.0,
                nonfinite,
            };
        }
        // total_cmp: a total order even if a non-finite value ever slipped
        // through — sorting must never panic.
        finite.sort_by(f64::total_cmp);
        let at = |p: f64| {
            // Nearest-rank: ceil(p·n) clamped into the sample range.
            let rank = (p * finite.len() as f64).ceil() as usize;
            finite[rank.clamp(1, finite.len()) - 1]
        };
        Percentiles {
            p50_ms: at(0.50),
            p95_ms: at(0.95),
            p99_ms: at(0.99),
            mean_ms: finite.iter().sum::<f64>() / finite.len() as f64,
            max_ms: finite[finite.len() - 1],
            nonfinite,
        }
    }
}

/// Requests shed by the engine, broken out by [`DropReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DropCounts {
    /// Worst-case KV footprint exceeds the whole pool.
    pub infeasible: u64,
    /// Still queued past the request's deadline.
    pub deadline: u64,
    /// Malformed spec (non-finite arrival, zero lengths).
    pub corrupt: u64,
}

impl DropCounts {
    /// Tallies one drop.
    pub fn count(&mut self, reason: DropReason) {
        match reason {
            DropReason::Infeasible => self.infeasible += 1,
            DropReason::DeadlineExceeded => self.deadline += 1,
            DropReason::CorruptSpec => self.corrupt += 1,
        }
    }

    /// Total requests dropped.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.infeasible + self.deadline + self.corrupt
    }
}

/// KV-pool pressure over the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvPoolStats {
    /// Blocks in the pool.
    pub total_blocks: usize,
    /// Tokens per block.
    pub block_tokens: usize,
    /// Modeled bytes of KV state per token (all layers, fp16).
    pub bytes_per_token: u64,
    /// High-water mark of blocks in use.
    pub peak_used_blocks: usize,
    /// Time-weighted mean fraction of the pool in use.
    pub mean_occupancy: f64,
    /// Peak fraction of the pool in use.
    pub peak_occupancy: f64,
    /// Copy-on-write prefix-dedup hits: sealed blocks replaced by an
    /// already-published identical block (0 with dedup off).
    pub dedup_hits: u64,
    /// High-water mark of *logical* blocks mapped across all tables —
    /// what physical usage would have been without dedup. Equal to
    /// `peak_used_blocks` when no block is ever shared.
    pub peak_logical_blocks: usize,
}

/// Per-tenant accounting: how one tenant class fared over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TenantMetrics {
    /// Tenant class id.
    pub tenant: u32,
    /// Requests this tenant offered.
    pub requests: usize,
    /// Requests that ran to completion.
    pub finished: usize,
    /// Requests shed with a typed reason.
    pub dropped: usize,
    /// Shed requests by reason.
    pub drops: DropCounts,
    /// Output tokens generated for this tenant.
    pub decode_tokens: u64,
    /// Output tokens of this tenant's deadline-meeting finishes.
    pub good_tokens: u64,
    /// Fraction of this tenant's finishes that met their deadline
    /// (vacuously 1.0 for deadline-free finishes; 0.0 with no finishes).
    pub slo_attainment: f64,
    /// This tenant's share of all time-weighted KV block usage
    /// (block·ms), normalized over tenants — occupancy attribution.
    pub kv_share: f64,
}

/// One fixed-width slice of a sustained-load run's trajectory: what the
/// engine finished, dropped, and occupied between consecutive window
/// boundaries of the virtual clock. Emitted when
/// [`EngineConfig::window_ms`](crate::EngineConfig::window_ms) is set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WindowSample {
    /// Window end on the engine's virtual clock.
    pub end_ms: f64,
    /// Requests finished inside the window.
    pub finished: usize,
    /// Requests dropped inside the window.
    pub dropped: usize,
    /// Output tokens generated inside the window.
    pub decode_tokens: u64,
    /// Deadline-meeting output tokens per second over the window.
    pub goodput_tokens_per_s: f64,
    /// Time-weighted mean KV-pool occupancy over the window, in [0, 1].
    pub kv_occupancy: f64,
    /// Chip count in effect at the window's close (tracks elastic
    /// scaling).
    pub chips: usize,
    /// Whether this window absorbed the run's tail after the sampler hit
    /// its bound: past `MAX_WINDOWS` boundaries the remainder of the run
    /// collapses into one final close, whose span can dwarf the nominal
    /// window width. Rate analysis (burn-rate windows, anomaly
    /// detection) must not read a truncated window as one nominal-width
    /// sample.
    pub truncated: bool,
}

/// The full metrics report of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeMetrics {
    /// Requests offered to the engine.
    pub requests: usize,
    /// Requests that ran to completion (`finished + dropped == requests`).
    pub finished: usize,
    /// Requests shed with a typed reason instead of served.
    pub dropped: usize,
    /// Shed requests by reason.
    pub drops: DropCounts,
    /// Preempt-and-recompute evictions under KV pressure.
    pub preemptions: u64,
    /// Engine virtual time from first arrival to last completion.
    pub makespan_ms: f64,
    /// Scheduler iterations executed.
    pub ticks: u64,
    /// Prompt tokens ingested.
    pub prefill_tokens: u64,
    /// Output tokens generated.
    pub decode_tokens: u64,
    /// Generated tokens per second of engine time (0 when the makespan is
    /// zero or non-finite — never `inf`/NaN).
    pub decode_tokens_per_s: f64,
    /// Generated tokens per second counting only requests that finished
    /// within their deadline — the goodput the SLO actually buys, versus
    /// the raw throughput above. Equal to `decode_tokens_per_s` when no
    /// request carries a deadline and nothing was dropped.
    pub goodput_tokens_per_s: f64,
    /// Time to first token.
    pub ttft: Percentiles,
    /// Time per output token after the first.
    pub tpot: Percentiles,
    /// End-to-end request latency.
    pub e2e: Percentiles,
    /// KV-pool pressure.
    pub kv: KvPoolStats,
    /// Per-tenant accounting, tenant-id-sorted. A single-tenant run
    /// reports exactly one entry for tenant 0.
    pub tenants: Vec<TenantMetrics>,
    /// Goodput/occupancy trajectory in fixed virtual-time windows; empty
    /// unless the run sampled windows.
    pub windows: Vec<WindowSample>,
    /// Sum of every request's final attention output — the numeric
    /// plane's fingerprint. Two runs agree on this iff they executed the
    /// same tokens through the same kernels in the same order.
    pub checksum: f64,
}

/// Groups per-request outcomes by tenant class, tenant-id-sorted, and
/// attributes the time-weighted KV usage shares.
fn collate_tenants(
    finished: &[Request],
    dropped: &[Request],
    tenant_block_ms: &[(u32, f64)],
) -> Vec<TenantMetrics> {
    use std::collections::BTreeMap;
    let mut by: BTreeMap<u32, TenantMetrics> = BTreeMap::new();
    fn entry(by: &mut BTreeMap<u32, TenantMetrics>, t: u32) -> &mut TenantMetrics {
        by.entry(t).or_insert_with(|| TenantMetrics {
            tenant: t,
            ..TenantMetrics::default()
        })
    }
    let mut met: BTreeMap<u32, usize> = BTreeMap::new();
    for r in finished {
        let m = entry(&mut by, r.spec.tenant);
        m.requests += 1;
        m.finished += 1;
        m.decode_tokens += r.generated as u64;
        if r.met_deadline() {
            m.good_tokens += r.generated as u64;
            *met.entry(r.spec.tenant).or_insert(0) += 1;
        }
    }
    for r in dropped {
        let m = entry(&mut by, r.spec.tenant);
        m.requests += 1;
        m.dropped += 1;
        if let Some(reason) = r.drop_reason {
            m.drops.count(reason);
        }
    }
    let total_ms: f64 = tenant_block_ms.iter().map(|&(_, ms)| ms.max(0.0)).sum();
    for &(t, ms) in tenant_block_ms {
        let m = entry(&mut by, t);
        m.kv_share = if total_ms > 0.0 {
            (ms.max(0.0) / total_ms).clamp(0.0, 1.0)
        } else {
            0.0
        };
    }
    for (t, m) in &mut by {
        m.slo_attainment = if m.finished > 0 {
            met.get(t).copied().unwrap_or(0) as f64 / m.finished as f64
        } else {
            0.0
        };
    }
    by.into_values().collect()
}

/// `x / (ms/1e3)` with every degenerate case (zero, negative, NaN,
/// infinite makespan) clamped to 0.0 — a rate must never be `inf`.
fn per_second(count: f64, makespan_ms: f64) -> f64 {
    if makespan_ms.is_finite() && makespan_ms > 0.0 {
        let rate = count / (makespan_ms / 1e3);
        if rate.is_finite() {
            rate
        } else {
            0.0
        }
    } else {
        0.0
    }
}

impl ServeMetrics {
    /// Collates finished and dropped requests into the report.
    /// `tenant_block_ms` attributes time-weighted KV usage to tenants
    /// (pairs of tenant id and block·ms); `windows` is the sampled
    /// trajectory (empty for unwindowed runs).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn collate(
        finished: &[Request],
        dropped: &[Request],
        kv: KvPoolStats,
        makespan_ms: f64,
        ticks: u64,
        prefill_tokens: u64,
        tenant_block_ms: &[(u32, f64)],
        windows: Vec<WindowSample>,
    ) -> Self {
        let done = finished.iter().filter(|r| r.finish_ms.is_some()).count();
        let decode_tokens: u64 = finished.iter().map(|r| r.generated as u64).sum();
        let good_tokens: u64 = finished
            .iter()
            .filter(|r| r.met_deadline())
            .map(|r| r.generated as u64)
            .sum();
        let mut drops = DropCounts::default();
        for r in dropped {
            if let Some(reason) = r.drop_reason {
                drops.count(reason);
            }
        }
        let tenants = collate_tenants(finished, dropped, tenant_block_ms);
        let collect = |f: &dyn Fn(&Request) -> Option<f64>| -> Vec<f64> {
            finished.iter().filter_map(f).collect()
        };
        ServeMetrics {
            requests: finished.len() + dropped.len(),
            finished: done,
            dropped: dropped.len(),
            drops,
            preemptions: finished.iter().chain(dropped).map(|r| r.preemptions).sum(),
            makespan_ms,
            ticks,
            prefill_tokens,
            decode_tokens,
            decode_tokens_per_s: per_second(decode_tokens as f64, makespan_ms),
            goodput_tokens_per_s: per_second(good_tokens as f64, makespan_ms),
            ttft: Percentiles::of(collect(&Request::ttft_ms)),
            tpot: Percentiles::of(collect(&Request::tpot_ms)),
            e2e: Percentiles::of(collect(&Request::e2e_ms)),
            kv,
            tenants,
            windows,
            checksum: finished
                .iter()
                .flat_map(|r| &r.last_out)
                .map(|&x| f64::from(x))
                .sum(),
        }
    }

    /// The metrics as a pretty JSON string (the `--json` CLI output and
    /// the determinism test's comparison key).
    #[must_use]
    pub fn to_json(&self) -> String {
        // Serialization of this plain struct cannot fail; the fallback
        // keeps the path panic-free under the crate's unwrap/expect ban.
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }

    /// The metrics as a [`flat_telemetry::Registry`], for the
    /// Prometheus-style text exposition (`flat serve --metrics FILE`):
    /// run totals become counters, pool pressure becomes gauges, and the
    /// latency percentiles become summaries with `quantile` labels. A
    /// derived view — the JSON report stays the source of truth and its
    /// schema is untouched.
    #[must_use]
    pub fn registry(&self) -> flat_telemetry::Registry {
        let mut r = flat_telemetry::Registry::new();
        let c = |v: u64| v as f64;
        r.counter_add(
            "serve_requests_total",
            "Requests offered to the engine.",
            c(self.requests as u64),
        );
        r.counter_add(
            "serve_finished_total",
            "Requests that ran to completion.",
            c(self.finished as u64),
        );
        r.counter_add(
            "serve_dropped_total",
            "Requests shed with a typed reason.",
            c(self.dropped as u64),
        );
        r.counter_add(
            "serve_drops_infeasible_total",
            "Drops: worst-case KV footprint exceeds the pool.",
            c(self.drops.infeasible),
        );
        r.counter_add(
            "serve_drops_deadline_total",
            "Drops: still queued past the request deadline.",
            c(self.drops.deadline),
        );
        r.counter_add(
            "serve_drops_corrupt_total",
            "Drops: malformed request spec.",
            c(self.drops.corrupt),
        );
        r.counter_add(
            "serve_preemptions_total",
            "Preempt-and-recompute evictions under KV pressure.",
            c(self.preemptions),
        );
        r.counter_add(
            "serve_ticks_total",
            "Scheduler iterations executed.",
            c(self.ticks),
        );
        r.counter_add(
            "serve_prefill_tokens_total",
            "Prompt tokens ingested.",
            c(self.prefill_tokens),
        );
        r.counter_add(
            "serve_decode_tokens_total",
            "Output tokens generated.",
            c(self.decode_tokens),
        );
        r.gauge_set(
            "serve_makespan_ms",
            "Engine virtual time from first arrival to last completion.",
            self.makespan_ms,
        );
        r.gauge_set(
            "serve_decode_tokens_per_s",
            "Generated tokens per second of engine time.",
            self.decode_tokens_per_s,
        );
        r.gauge_set(
            "serve_goodput_tokens_per_s",
            "Generated tokens per second within deadline.",
            self.goodput_tokens_per_s,
        );
        r.gauge_set(
            "serve_kv_peak_occupancy",
            "Peak fraction of the KV pool in use.",
            self.kv.peak_occupancy,
        );
        r.gauge_set(
            "serve_kv_mean_occupancy",
            "Time-weighted mean fraction of the KV pool in use.",
            self.kv.mean_occupancy,
        );
        let quantiles = |p: &Percentiles| {
            vec![
                ("0.5", p.p50_ms),
                ("0.95", p.p95_ms),
                ("0.99", p.p99_ms),
                ("1", p.max_ms),
            ]
        };
        r.summary(
            "serve_ttft_ms",
            "Time to first token, milliseconds.",
            quantiles(&self.ttft),
        );
        r.summary(
            "serve_tpot_ms",
            "Time per output token after the first, milliseconds.",
            quantiles(&self.tpot),
        );
        r.summary(
            "serve_e2e_ms",
            "End-to-end request latency, milliseconds.",
            quantiles(&self.e2e),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentiles_of_known_samples() {
        let p = Percentiles::of((1..=100).map(f64::from).collect());
        assert_eq!(p.p50_ms, 50.0);
        assert_eq!(p.p95_ms, 95.0);
        assert_eq!(p.p99_ms, 99.0);
        assert_eq!(p.max_ms, 100.0);
        assert!((p.mean_ms - 50.5).abs() < 1e-12);
        assert_eq!(p.nonfinite, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let p = Percentiles::of(vec![7.0]);
        assert_eq!(
            (p.p50_ms, p.p95_ms, p.p99_ms, p.max_ms),
            (7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn empty_samples_are_all_zero() {
        let p = Percentiles::of(Vec::new());
        assert_eq!(p.mean_ms, 0.0);
        assert_eq!(p.max_ms, 0.0);
        assert_eq!(p.nonfinite, 0);
    }

    #[test]
    fn nan_samples_are_flagged_not_fatal() {
        let p = Percentiles::of(vec![f64::NAN, 3.0, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(p.nonfinite, 2);
        assert_eq!(p.p50_ms, 2.0);
        assert_eq!(p.max_ms, 3.0);
        assert!((p.mean_ms - 2.0).abs() < 1e-12);
        let all_bad = Percentiles::of(vec![f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(all_bad.nonfinite, 2);
        assert_eq!(all_bad.p99_ms, 0.0);
    }

    proptest! {
        /// Nearest-rank edge cases: any mix of finite and NaN samples
        /// yields ordered finite percentiles and an exact nonfinite count.
        #[test]
        fn percentiles_total_order_and_bounds(
            finite in proptest::collection::vec(-1e12..1e12f64, 1..64),
            nans in 0usize..8,
        ) {
            let mut samples = finite.clone();
            samples.extend(std::iter::repeat_n(f64::NAN, nans));
            let p = Percentiles::of(samples);
            prop_assert_eq!(p.nonfinite, nans);
            prop_assert!(p.p50_ms <= p.p95_ms);
            prop_assert!(p.p95_ms <= p.p99_ms);
            prop_assert!(p.p99_ms <= p.max_ms);
            let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(p.max_ms, hi);
            prop_assert!(p.p50_ms >= lo);
            prop_assert!(p.mean_ms.is_finite());
        }

        /// n = 1 and all-equal inputs collapse every statistic to that value.
        #[test]
        fn percentiles_all_equal_collapse(x in -1e9..1e9f64, n in 1usize..32) {
            let p = Percentiles::of(vec![x; n]);
            prop_assert_eq!(p.p50_ms, x);
            prop_assert_eq!(p.p95_ms, x);
            prop_assert_eq!(p.p99_ms, x);
            prop_assert_eq!(p.max_ms, x);
            prop_assert!((p.mean_ms - x).abs() <= 1e-9 * x.abs().max(1.0));
        }
    }

    #[test]
    fn rates_clamp_degenerate_makespans() {
        assert_eq!(
            per_second(100.0, 0.0),
            0.0,
            "instantaneous run must not be inf"
        );
        assert_eq!(per_second(100.0, f64::NAN), 0.0);
        assert_eq!(per_second(100.0, f64::INFINITY), 0.0);
        assert_eq!(per_second(100.0, -5.0), 0.0);
        assert!((per_second(100.0, 1000.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn drop_counts_tally_by_reason() {
        let mut d = DropCounts::default();
        d.count(DropReason::Infeasible);
        d.count(DropReason::DeadlineExceeded);
        d.count(DropReason::DeadlineExceeded);
        d.count(DropReason::CorruptSpec);
        assert_eq!((d.infeasible, d.deadline, d.corrupt), (1, 2, 1));
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let kv = KvPoolStats {
            total_blocks: 8,
            block_tokens: 16,
            bytes_per_token: 1024,
            peak_used_blocks: 6,
            mean_occupancy: 0.5,
            peak_occupancy: 0.75,
            dedup_hits: 0,
            peak_logical_blocks: 6,
        };
        let m = ServeMetrics::collate(&[], &[], kv, 100.0, 10, 0, &[], Vec::new());
        let json = m.to_json();
        assert!(json.contains("\"decode_tokens_per_s\""));
        assert!(json.contains("\"goodput_tokens_per_s\""));
        assert!(json.contains("\"drops\""));
        assert!(json.contains("\"peak_used_blocks\": 6"));
        assert!(json.contains("\"dedup_hits\""));
        assert!(json.contains("\"tenants\""));
        assert!(json.contains("\"windows\""));
    }

    #[test]
    fn tenant_collation_groups_and_attributes_shares() {
        use crate::request::{Request, RequestSpec};
        let mk = |id: usize, tenant: u32, generated: usize, finish: Option<f64>| {
            let mut r = Request::new(RequestSpec {
                tenant,
                ..RequestSpec::new(id, 0.0, 4, generated.max(1))
            });
            r.generated = generated;
            r.finish_ms = finish;
            r
        };
        let finished = vec![
            mk(0, 0, 5, Some(10.0)),
            mk(1, 1, 7, Some(20.0)),
            mk(2, 1, 3, Some(30.0)),
        ];
        let mut late = mk(3, 1, 2, None);
        late.mark_dropped(DropReason::DeadlineExceeded, 5.0);
        let dropped = vec![late];
        let tenants = collate_tenants(&finished, &dropped, &[(0, 25.0), (1, 75.0)]);
        assert_eq!(tenants.len(), 2);
        assert_eq!(
            (tenants[0].tenant, tenants[0].finished, tenants[0].dropped),
            (0, 1, 0)
        );
        assert_eq!(
            (tenants[1].tenant, tenants[1].finished, tenants[1].dropped),
            (1, 2, 1)
        );
        assert_eq!(tenants[1].drops.deadline, 1);
        assert_eq!(tenants[1].decode_tokens, 10);
        assert!((tenants[0].kv_share - 0.25).abs() < 1e-12);
        assert!((tenants[1].kv_share - 0.75).abs() < 1e-12);
        assert_eq!(
            tenants[0].slo_attainment, 1.0,
            "no deadline is vacuously met"
        );
    }
}
