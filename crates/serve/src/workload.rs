//! Synthetic request traffic: Poisson-ish arrivals with prompt/output
//! lengths scaled off the paper's long-sequence [`Task`] presets.

use crate::error::ServeError;
use crate::request::RequestSpec;
use flat_workloads::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic request stream.
///
/// Arrivals are a Poisson process (exponential inter-arrival gaps at
/// `arrival_rate_per_s`); prompt lengths are uniform in
/// `[prompt_mean/2, 3·prompt_mean/2]` and output lengths uniform in
/// `[output_mean/2, 3·output_mean/2]` (both clamped to ≥ 1) — wide enough
/// to exercise ragged batches without a heavy-tail escape hatch.
///
/// # Example
///
/// ```
/// use flat_serve::WorkloadSpec;
/// use flat_workloads::Task;
///
/// let spec = WorkloadSpec::from_task(Task::ShortNlp, 16, 100.0);
/// assert_eq!(spec.prompt_mean, 512);
/// let reqs = spec.generate(7).unwrap();
/// assert_eq!(reqs.len(), 16);
/// assert!(reqs.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate, requests per second.
    pub arrival_rate_per_s: f64,
    /// Mean prompt length in tokens.
    pub prompt_mean: usize,
    /// Mean output (generated) length in tokens.
    pub output_mean: usize,
    /// Per-request SLO: each request's deadline is its arrival plus this
    /// many milliseconds. `None` (the default) generates deadline-free
    /// requests.
    pub slo_ms: Option<f64>,
}

impl WorkloadSpec {
    /// A spec whose prompt length follows a [`Task`] preset's sequence
    /// length, with outputs an eighth of the prompt (summaries, captions,
    /// continuations — generation is short relative to context), and no
    /// SLO.
    #[must_use]
    pub fn from_task(task: Task, requests: usize, arrival_rate_per_s: f64) -> Self {
        let prompt_mean = task.sequence_length() as usize;
        WorkloadSpec {
            requests,
            arrival_rate_per_s,
            prompt_mean,
            output_mean: (prompt_mean / 8).max(1),
            slo_ms: None,
        }
    }

    /// Checks the spec for degeneracies instead of panicking on them.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidWorkload`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |why: &str| Err(ServeError::InvalidWorkload(why.to_owned()));
        if self.requests == 0 {
            return bad("need at least one request");
        }
        if !(self.arrival_rate_per_s > 0.0 && self.arrival_rate_per_s.is_finite()) {
            return bad("arrival rate must be positive and finite");
        }
        if self.prompt_mean == 0 || self.output_mean == 0 {
            return bad("token means must be positive");
        }
        if self.slo_ms.is_some_and(|s| !(s > 0.0 && s.is_finite())) {
            return bad("slo must be positive and finite when set");
        }
        Ok(())
    }

    /// Generates the request stream, deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidWorkload`] if the spec is degenerate (no
    /// requests, non-positive rate, zero means, non-positive SLO).
    pub fn generate(&self, seed: u64) -> Result<Vec<RequestSpec>, ServeError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now_ms = 0.0f64;
        Ok((0..self.requests)
            .map(|id| {
                // Exponential gap: -ln(1-u)/λ, u ∈ [0,1) so 1-u ∈ (0,1].
                let u: f64 = rng.gen();
                now_ms += -(1.0 - u).ln() / self.arrival_rate_per_s * 1e3;
                RequestSpec {
                    id,
                    arrival_ms: now_ms,
                    prompt_len: uniform_about(self.prompt_mean, &mut rng),
                    output_len: uniform_about(self.output_mean, &mut rng),
                    deadline_ms: self.slo_ms.map(|slo| now_ms + slo),
                }
            })
            .collect())
    }
}

/// Uniform in `[mean/2, 3·mean/2]`, at least 1.
fn uniform_about(mean: usize, rng: &mut StdRng) -> usize {
    let lo = (mean / 2).max(1);
    let hi = (mean + mean / 2).max(lo + 1);
    rng.gen_range(lo..=hi)
}

/// Parses a task name as the CLI spells it.
///
/// # Errors
///
/// Returns the list of accepted names on an unknown label.
pub fn task_by_name(name: &str) -> Result<Task, String> {
    match name {
        "short-nlp" => Ok(Task::ShortNlp),
        "image-generation" => Ok(Task::ImageGeneration),
        "summarization" => Ok(Task::Summarization),
        "language-modeling" => Ok(Task::LanguageModeling),
        "music-processing" => Ok(Task::MusicProcessing),
        other => Err(format!(
            "unknown task {other:?} (short-nlp|image-generation|summarization|language-modeling|music-processing)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSpec {
        WorkloadSpec {
            requests: 32,
            arrival_rate_per_s: 50.0,
            prompt_mean: 64,
            output_mean: 8,
            slo_ms: None,
        }
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let spec = base();
        assert_eq!(spec.generate(3).unwrap(), spec.generate(3).unwrap());
        assert_ne!(spec.generate(3).unwrap(), spec.generate(4).unwrap());
    }

    #[test]
    fn lengths_stay_in_band() {
        let spec = WorkloadSpec {
            requests: 200,
            arrival_rate_per_s: 10.0,
            prompt_mean: 100,
            output_mean: 10,
            slo_ms: None,
        };
        for r in spec.generate(1).unwrap() {
            assert!((50..=150).contains(&r.prompt_len));
            assert!((5..=15).contains(&r.output_len));
            assert!(r.output_len >= 1);
            assert_eq!(r.deadline_ms, None);
        }
    }

    #[test]
    fn arrivals_are_monotone_and_rate_scaled() {
        let fast = WorkloadSpec {
            requests: 100,
            arrival_rate_per_s: 1000.0,
            prompt_mean: 8,
            output_mean: 2,
            slo_ms: None,
        };
        let slow = WorkloadSpec {
            arrival_rate_per_s: 10.0,
            ..fast
        };
        let (f, s) = (fast.generate(9).unwrap(), slow.generate(9).unwrap());
        assert!(f.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        // Same seed, 100× the rate ⇒ exactly 100× shorter span.
        let span = |v: &[RequestSpec]| v.last().unwrap().arrival_ms;
        assert!((span(&s) / span(&f) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn slo_sets_deadlines_relative_to_arrival() {
        let spec = WorkloadSpec {
            slo_ms: Some(250.0),
            ..base()
        };
        for r in spec.generate(2).unwrap() {
            let d = r.deadline_ms.unwrap();
            assert!((d - r.arrival_ms - 250.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_specs_are_typed_errors_not_panics() {
        let cases = [
            WorkloadSpec {
                requests: 0,
                ..base()
            },
            WorkloadSpec {
                arrival_rate_per_s: 0.0,
                ..base()
            },
            WorkloadSpec {
                arrival_rate_per_s: f64::NAN,
                ..base()
            },
            WorkloadSpec {
                prompt_mean: 0,
                ..base()
            },
            WorkloadSpec {
                output_mean: 0,
                ..base()
            },
            WorkloadSpec {
                slo_ms: Some(0.0),
                ..base()
            },
            WorkloadSpec {
                slo_ms: Some(f64::INFINITY),
                ..base()
            },
        ];
        for spec in cases {
            let err = spec.generate(1).unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidWorkload(_)),
                "{spec:?} should be InvalidWorkload, got {err:?}"
            );
        }
    }

    #[test]
    fn task_names_round_trip() {
        for t in Task::all() {
            let name = match t {
                Task::ShortNlp => "short-nlp",
                Task::ImageGeneration => "image-generation",
                Task::Summarization => "summarization",
                Task::LanguageModeling => "language-modeling",
                Task::MusicProcessing => "music-processing",
            };
            assert_eq!(task_by_name(name).unwrap(), t);
        }
        assert!(task_by_name("chatbot").is_err());
    }

    #[test]
    fn task_presets_set_prompt_means() {
        let s = WorkloadSpec::from_task(Task::ImageGeneration, 4, 1.0);
        assert_eq!(s.prompt_mean, 12 * 1024);
        assert_eq!(s.output_mean, 12 * 1024 / 8);
    }
}
