//! Synthetic request traffic: Poisson-ish arrivals with prompt/output
//! lengths scaled off the paper's long-sequence [`Task`] presets.

use crate::error::ServeError;
use crate::request::RequestSpec;
use flat_workloads::Task;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic request stream.
///
/// Arrivals are a Poisson process (exponential inter-arrival gaps at
/// `arrival_rate_per_s`); prompt lengths are uniform in
/// `[prompt_mean/2, 3·prompt_mean/2]` and output lengths uniform in
/// `[output_mean/2, 3·output_mean/2]` (both clamped to ≥ 1) — wide enough
/// to exercise ragged batches without a heavy-tail escape hatch.
///
/// # Example
///
/// ```
/// use flat_serve::WorkloadSpec;
/// use flat_workloads::Task;
///
/// let spec = WorkloadSpec::from_task(Task::ShortNlp, 16, 100.0);
/// assert_eq!(spec.prompt_mean, 512);
/// let reqs = spec.generate(7).unwrap();
/// assert_eq!(reqs.len(), 16);
/// assert!(reqs.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate, requests per second.
    pub arrival_rate_per_s: f64,
    /// Mean prompt length in tokens.
    pub prompt_mean: usize,
    /// Mean output (generated) length in tokens.
    pub output_mean: usize,
    /// Per-request SLO: each request's deadline is its arrival plus this
    /// many milliseconds. `None` (the default) generates deadline-free
    /// requests.
    pub slo_ms: Option<f64>,
    /// Tenant class stamped on every generated request. One
    /// `WorkloadSpec` describes one tenant's stream; merge several with
    /// [`merge_streams`] for a multi-tenant offered load.
    pub tenant: u32,
    /// Priority class stamped on every generated request (higher survives
    /// preemption longer).
    pub priority: u8,
    /// Weighted-fair-admission weight in milli-units (1000 = 1.0).
    pub weight_milli: u32,
    /// Shared prefix template id: when set, every generated request
    /// carries it together with [`prefix_tokens`](Self::prefix_tokens)
    /// shared leading prompt tokens.
    pub prefix_template: Option<u64>,
    /// Shared-prefix length in tokens (clamped per request to its prompt
    /// length).
    pub prefix_tokens: usize,
}

impl Default for WorkloadSpec {
    /// A single-request, single-tenant placeholder meant for `..` update
    /// syntax; override the traffic knobs before use.
    fn default() -> Self {
        WorkloadSpec {
            requests: 1,
            arrival_rate_per_s: 1.0,
            prompt_mean: 1,
            output_mean: 1,
            slo_ms: None,
            tenant: 0,
            priority: 0,
            weight_milli: 1000,
            prefix_template: None,
            prefix_tokens: 0,
        }
    }
}

impl WorkloadSpec {
    /// A spec whose prompt length follows a [`Task`] preset's sequence
    /// length, with outputs an eighth of the prompt (summaries, captions,
    /// continuations — generation is short relative to context), and no
    /// SLO.
    #[must_use]
    pub fn from_task(task: Task, requests: usize, arrival_rate_per_s: f64) -> Self {
        let prompt_mean = task.sequence_length() as usize;
        WorkloadSpec {
            requests,
            arrival_rate_per_s,
            prompt_mean,
            output_mean: (prompt_mean / 8).max(1),
            ..WorkloadSpec::default()
        }
    }

    /// Checks the spec for degeneracies instead of panicking on them.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidWorkload`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |why: &str| Err(ServeError::InvalidWorkload(why.to_owned()));
        if self.requests == 0 {
            return bad("need at least one request");
        }
        if !(self.arrival_rate_per_s > 0.0 && self.arrival_rate_per_s.is_finite()) {
            return bad("arrival rate must be positive and finite");
        }
        if self.prompt_mean == 0 || self.output_mean == 0 {
            return bad("token means must be positive");
        }
        if self.slo_ms.is_some_and(|s| !(s > 0.0 && s.is_finite())) {
            return bad("slo must be positive and finite when set");
        }
        if self.weight_milli == 0 {
            return bad("tenant weight must be positive");
        }
        Ok(())
    }

    /// Generates the request stream, deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidWorkload`] if the spec is degenerate (no
    /// requests, non-positive rate, zero means, non-positive SLO).
    pub fn generate(&self, seed: u64) -> Result<Vec<RequestSpec>, ServeError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now_ms = 0.0f64;
        Ok((0..self.requests)
            .map(|id| {
                // Exponential gap: -ln(1-u)/λ, u ∈ [0,1) so 1-u ∈ (0,1].
                let u: f64 = rng.gen();
                now_ms += -(1.0 - u).ln() / self.arrival_rate_per_s * 1e3;
                let prompt_len = uniform_about(self.prompt_mean, &mut rng);
                RequestSpec {
                    id,
                    arrival_ms: now_ms,
                    prompt_len,
                    output_len: uniform_about(self.output_mean, &mut rng),
                    deadline_ms: self.slo_ms.map(|slo| now_ms + slo),
                    tenant: self.tenant,
                    priority: self.priority,
                    weight_milli: self.weight_milli,
                    prefix_template: self.prefix_template,
                    prefix_len: self.prefix_tokens.min(prompt_len),
                }
            })
            .collect())
    }
}

/// Interleaves several per-tenant request streams into one offered load:
/// merged by arrival time (ties broken by tenant, then original id) and
/// re-numbered with globally unique, arrival-ordered ids — the form the
/// engine's scheduler expects. Deterministic for deterministic inputs.
#[must_use]
pub fn merge_streams(streams: Vec<Vec<RequestSpec>>) -> Vec<RequestSpec> {
    let mut all: Vec<RequestSpec> = streams.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        a.arrival_ms
            .total_cmp(&b.arrival_ms)
            .then(a.tenant.cmp(&b.tenant))
            .then(a.id.cmp(&b.id))
    });
    for (id, r) in all.iter_mut().enumerate() {
        r.id = id;
    }
    all
}

/// Uniform in `[mean/2, 3·mean/2]`, at least 1.
fn uniform_about(mean: usize, rng: &mut StdRng) -> usize {
    let lo = (mean / 2).max(1);
    let hi = (mean + mean / 2).max(lo + 1);
    rng.gen_range(lo..=hi)
}

/// Parses a task name as the CLI spells it.
///
/// # Errors
///
/// Returns the list of accepted names on an unknown label.
pub fn task_by_name(name: &str) -> Result<Task, String> {
    match name {
        "short-nlp" => Ok(Task::ShortNlp),
        "image-generation" => Ok(Task::ImageGeneration),
        "summarization" => Ok(Task::Summarization),
        "language-modeling" => Ok(Task::LanguageModeling),
        "music-processing" => Ok(Task::MusicProcessing),
        other => Err(format!(
            "unknown task {other:?} (short-nlp|image-generation|summarization|language-modeling|music-processing)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WorkloadSpec {
        WorkloadSpec {
            requests: 32,
            arrival_rate_per_s: 50.0,
            prompt_mean: 64,
            output_mean: 8,
            ..WorkloadSpec::default()
        }
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let spec = base();
        assert_eq!(spec.generate(3).unwrap(), spec.generate(3).unwrap());
        assert_ne!(spec.generate(3).unwrap(), spec.generate(4).unwrap());
    }

    #[test]
    fn lengths_stay_in_band() {
        let spec = WorkloadSpec {
            requests: 200,
            arrival_rate_per_s: 10.0,
            prompt_mean: 100,
            output_mean: 10,
            ..WorkloadSpec::default()
        };
        for r in spec.generate(1).unwrap() {
            assert!((50..=150).contains(&r.prompt_len));
            assert!((5..=15).contains(&r.output_len));
            assert!(r.output_len >= 1);
            assert_eq!(r.deadline_ms, None);
        }
    }

    #[test]
    fn arrivals_are_monotone_and_rate_scaled() {
        let fast = WorkloadSpec {
            requests: 100,
            arrival_rate_per_s: 1000.0,
            prompt_mean: 8,
            output_mean: 2,
            ..WorkloadSpec::default()
        };
        let slow = WorkloadSpec {
            arrival_rate_per_s: 10.0,
            ..fast
        };
        let (f, s) = (fast.generate(9).unwrap(), slow.generate(9).unwrap());
        assert!(f.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        // Same seed, 100× the rate ⇒ exactly 100× shorter span.
        let span = |v: &[RequestSpec]| v.last().unwrap().arrival_ms;
        assert!((span(&s) / span(&f) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn slo_sets_deadlines_relative_to_arrival() {
        let spec = WorkloadSpec {
            slo_ms: Some(250.0),
            ..base()
        };
        for r in spec.generate(2).unwrap() {
            let d = r.deadline_ms.unwrap();
            assert!((d - r.arrival_ms - 250.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_specs_are_typed_errors_not_panics() {
        let cases = [
            WorkloadSpec {
                requests: 0,
                ..base()
            },
            WorkloadSpec {
                arrival_rate_per_s: 0.0,
                ..base()
            },
            WorkloadSpec {
                arrival_rate_per_s: f64::NAN,
                ..base()
            },
            WorkloadSpec {
                prompt_mean: 0,
                ..base()
            },
            WorkloadSpec {
                output_mean: 0,
                ..base()
            },
            WorkloadSpec {
                slo_ms: Some(0.0),
                ..base()
            },
            WorkloadSpec {
                slo_ms: Some(f64::INFINITY),
                ..base()
            },
            WorkloadSpec {
                weight_milli: 0,
                ..base()
            },
        ];
        for spec in cases {
            let err = spec.generate(1).unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidWorkload(_)),
                "{spec:?} should be InvalidWorkload, got {err:?}"
            );
        }
    }

    #[test]
    fn task_names_round_trip() {
        for t in Task::all() {
            let name = match t {
                Task::ShortNlp => "short-nlp",
                Task::ImageGeneration => "image-generation",
                Task::Summarization => "summarization",
                Task::LanguageModeling => "language-modeling",
                Task::MusicProcessing => "music-processing",
            };
            assert_eq!(task_by_name(name).unwrap(), t);
        }
        assert!(task_by_name("chatbot").is_err());
    }

    #[test]
    fn tenant_and_prefix_fields_are_stamped() {
        let spec = WorkloadSpec {
            tenant: 3,
            priority: 2,
            weight_milli: 2500,
            prefix_template: Some(77),
            prefix_tokens: 48,
            ..base()
        };
        for r in spec.generate(5).unwrap() {
            assert_eq!((r.tenant, r.priority, r.weight_milli), (3, 2, 2500));
            assert_eq!(r.prefix_template, Some(77));
            assert!(r.prefix_len <= r.prompt_len);
            assert_eq!(r.prefix_len, 48.min(r.prompt_len));
            assert_eq!(r.shared_prefix_len(), r.prefix_len);
        }
    }

    #[test]
    fn merged_streams_are_arrival_sorted_with_unique_ids() {
        let a = WorkloadSpec {
            tenant: 0,
            ..base()
        };
        let b = WorkloadSpec {
            tenant: 1,
            arrival_rate_per_s: 80.0,
            ..base()
        };
        let merged = merge_streams(vec![a.generate(1).unwrap(), b.generate(2).unwrap()]);
        assert_eq!(merged.len(), 64);
        assert!(merged
            .windows(2)
            .all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        for (i, r) in merged.iter().enumerate() {
            assert_eq!(r.id, i);
        }
        assert!(merged.iter().any(|r| r.tenant == 0));
        assert!(merged.iter().any(|r| r.tenant == 1));
        // Deterministic: same inputs, same merge.
        let again = merge_streams(vec![a.generate(1).unwrap(), b.generate(2).unwrap()]);
        assert_eq!(merged, again);
    }

    #[test]
    fn task_presets_set_prompt_means() {
        let s = WorkloadSpec::from_task(Task::ImageGeneration, 4, 1.0);
        assert_eq!(s.prompt_mean, 12 * 1024);
        assert_eq!(s.output_mean, 12 * 1024 / 8);
    }
}
