//! The continuous-batching engine: iteration-level scheduling of prefill
//! chunks and decode steps over the paged KV pool.
//!
//! Each engine *tick* composes one mixed batch (Orca-style iteration-level
//! scheduling): every running decode request advances by exactly one
//! token, and up to `prefill_chunk` prompt tokens of admitted requests are
//! ingested alongside. Admission is backpressured by the KV pool's free
//! list; exhaustion mid-tick preempts the latest-arrived running request
//! (vLLM's recompute policy: release its pages, re-queue it, count it).
//!
//! Two planes run side by side, deliberately:
//!
//! * the **numeric plane** executes real attention per scheduled token
//!   through [`flat_kernels::decode_attention_with`] at a reduced width (one
//!   representative head, `dk` lanes) — each step's output feeds the next
//!   step's Q/K/V derivation, so generation is genuinely sequential and
//!   any scheduling bug shows up in the numeric checksum;
//! * the **accounting plane** prices every tick against the full model on
//!   the modeled accelerator — weight streaming, KV streaming at the
//!   all-layer byte cost, and MAC throughput — producing the TTFT/TPOT
//!   latencies the metrics report.
//!
//! The engine is **total**: it never panics on adversarial input.
//! Malformed specs, requests whose worst-case KV footprint exceeds the
//! whole pool, and requests queued past their deadline are shed with a
//! typed [`DropReason`] and counted; configuration and workload problems
//! surface as [`ServeError`]s; and a scheduler that stops making progress
//! trips a tick cap into [`ServeError::Livelock`] instead of hanging.

use crate::dist::{CollectiveSlice, DistPlane, ScaleEvent, ScaleEventRecord};
use crate::error::{DropReason, ServeError};
use crate::faults::{FaultInjector, FaultPlan};
use crate::kv::{KvLayout, KvPool};
use crate::metrics::{KvPoolStats, ServeMetrics, WindowSample};
use crate::request::{Phase, Request, RequestSpec};
use flat_arch::Accelerator;
use flat_kernels::{decode_attention_with, ComputePrecision};
use flat_telemetry::{Event, NoopSink, TraceSink};
use flat_tensor::{Bytes, SoftmaxKind};
use flat_workloads::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeMap, VecDeque};

/// The engine's process lane in exported traces; chips are `1 + chip`.
pub(crate) const TRACE_PID_ENGINE: u32 = 0;

/// Milliseconds (the engine clock) to microseconds (the trace clock).
const US_PER_MS: f64 = 1e3;

/// Scheduler and execution knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Tokens per KV-cache block.
    pub block_tokens: usize,
    /// Prompt tokens ingested per tick across all prefilling requests.
    pub prefill_chunk: usize,
    /// Maximum concurrently running (admitted) requests.
    pub max_batch: usize,
    /// Execution width of the numeric plane (one head's lanes).
    pub dk: usize,
    /// Modeled memory budget backing the KV pool.
    pub kv_budget: Bytes,
    /// Seed of the numeric plane (token embeddings).
    pub seed: u64,
    /// Storage precision of the numeric plane's attention (and the
    /// element width the accounting plane prices KV streaming at).
    pub precision: ComputePrecision,
    /// Softmax family member the decode kernel runs.
    pub softmax: SoftmaxKind,
    /// Copy-on-write prefix sharing: dedup full KV blocks of shared
    /// prompt prefixes (requests carrying the same
    /// [`RequestSpec::prefix_template`]) across the batch. Capacity-only:
    /// outputs and per-request latencies are token-identical to a
    /// dedup-off run of the same workload and seed (a test pins this).
    pub dedup: bool,
    /// Emit a [`WindowSample`] every this-many virtual milliseconds —
    /// the goodput/latency/occupancy trajectory sustained-load runs plot.
    /// `None` (the default) keeps the metrics schema unchanged.
    pub window_ms: Option<f64>,
}

impl EngineConfig {
    /// Defaults sized against the accelerator's modeled DRAM: the KV pool
    /// gets whatever the off-chip level holds beyond the model weights.
    #[must_use]
    pub fn for_platform(accel: &Accelerator, model: &Model, seed: u64) -> Self {
        let weights = Bytes::new(2 * model_params(model) as u64);
        // Never below one block's worth: a pool must exist even when the
        // weights nominally fill DRAM.
        let kv_budget = accel.dram_capacity().saturating_sub(weights);
        EngineConfig {
            block_tokens: 16,
            prefill_chunk: 512,
            max_batch: 64,
            dk: 32,
            kv_budget,
            seed,
            precision: ComputePrecision::F32,
            softmax: SoftmaxKind::Exact,
            dedup: false,
            window_ms: None,
        }
    }

    /// Rejects configurations the scheduler cannot make progress under.
    fn validate(&self) -> Result<(), ServeError> {
        let bad = |why: &str| Err(ServeError::InvalidConfig(why.to_owned()));
        if self.block_tokens == 0 {
            return bad("block_tokens must be at least 1");
        }
        if self.prefill_chunk == 0 {
            return bad("prefill_chunk must be at least 1 or prompts never ingest");
        }
        if self.max_batch == 0 {
            return bad("max_batch must be at least 1 or nothing is ever admitted");
        }
        if self.dk == 0 {
            return bad("dk must be at least 1");
        }
        if self.window_ms.is_some_and(|w| !(w > 0.0 && w.is_finite())) {
            return bad("window_ms must be positive and finite when set");
        }
        Ok(())
    }
}

/// Weight parameter count of the full model: per layer the four h×h
/// attention projections plus the two FFN matrices.
fn model_params(model: &Model) -> f64 {
    let h = model.hidden() as f64;
    let ffn = model.ffn_hidden() as f64;
    model.blocks() as f64 * (4.0 * h * h + 2.0 * h * ffn)
}

/// Runs a request stream to completion and reports the metrics.
///
/// Every request in `workload` is accounted for exactly once: it either
/// finishes, or is dropped with a typed [`DropReason`] (infeasible
/// footprint, missed deadline, corrupt spec) — conservation is the
/// engine's core invariant, asserted in the tests. The whole run is
/// deterministic in (`workload`, `cfg.seed`).
///
/// # Errors
///
/// [`ServeError::EmptyWorkload`] on an empty workload,
/// [`ServeError::InvalidConfig`] on degenerate engine knobs, and
/// [`ServeError::Livelock`] if the scheduler ever stops making progress
/// (a bug guard — no well-formed input triggers it).
pub fn serve(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
) -> Result<ServeMetrics, ServeError> {
    serve_with_faults(accel, model, workload, cfg, None)
}

/// [`serve`], recording the run into a [`TraceSink`]: per-request
/// lifecycle spans (queued → prefill chunks → decode steps →
/// finished/dropped/preempted) and per-tick KV/queue counter tracks, all
/// stamped on the deterministic virtual clock — so for a fixed workload
/// and seed the trace is byte-reproducible. With a
/// [`NoopSink`] this is exactly [`serve`]: the sink is
/// consulted before any event is built, and the metrics are untouched
/// either way (a test diffs the JSON).
///
/// # Errors
///
/// As [`serve`].
pub fn serve_traced(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    sink: &mut dyn TraceSink,
) -> Result<ServeMetrics, ServeError> {
    serve_with_faults_traced(accel, model, workload, cfg, None, sink)
}

/// [`serve_with_faults`] with a [`TraceSink`] attached — chaos runs are
/// traceable too (fault-injected clock skew lands in the trace exactly
/// as it lands in the metrics).
///
/// # Errors
///
/// As [`serve`].
pub fn serve_with_faults_traced(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    faults: Option<FaultPlan>,
    sink: &mut dyn TraceSink,
) -> Result<ServeMetrics, ServeError> {
    Ok(
        Engine::new(accel, model, workload, cfg, faults, None, &[], sink)?
            .run()?
            .0,
    )
}

/// [`serve`], with a seeded [`FaultPlan`] injecting mid-run failures —
/// the chaos-testing entry point. `faults: None` is exactly [`serve`].
///
/// # Errors
///
/// As [`serve`]. Injected faults never produce an error by themselves:
/// the engine sheds what the faults make unservable and reports it in the
/// metrics' drop counters.
pub fn serve_with_faults(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    faults: Option<FaultPlan>,
) -> Result<ServeMetrics, ServeError> {
    let mut sink = NoopSink;
    serve_with_faults_traced(accel, model, workload, cfg, faults, &mut sink)
}

/// Runs the engine with a distributed plane attached: the cluster's
/// pooled KV capacity, scaled-out compute, and per-tick collective time
/// on the virtual clock. Returns the metrics plus the plane with its
/// accumulated fabric totals. Called by [`crate::dist::serve_dist`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dist_engine(
    accel: &Accelerator,
    model: &Model,
    workload: &[RequestSpec],
    cfg: &EngineConfig,
    plane: DistPlane,
    faults: Option<FaultPlan>,
    scale: &[ScaleEvent],
    sink: &mut dyn TraceSink,
) -> Result<(ServeMetrics, DistPlane), ServeError> {
    let (metrics, plane) = Engine::new(
        accel,
        model,
        workload,
        cfg,
        faults,
        Some(plane),
        scale,
        sink,
    )?
    .run()?;
    match plane {
        Some(p) => Ok((metrics, p)),
        None => Err(ServeError::Internal(
            "distributed plane lost during the run",
        )),
    }
}

struct Engine<'t> {
    cfg: EngineConfig,
    layout: KvLayout,
    pool: KvPool,
    scale: f32,
    /// Not-yet-arrived requests, arrival-sorted.
    incoming: VecDeque<Request>,
    /// Arrived (or preempted) requests awaiting admission, arrival-sorted.
    waiting: VecDeque<Request>,
    /// Admitted requests, admission order.
    running: Vec<Request>,
    finished: Vec<Request>,
    /// Requests shed with a typed reason.
    dropped: Vec<Request>,
    injector: Option<FaultInjector>,
    /// Distributed plane: collective pricing + per-shard accounting.
    dist: Option<DistPlane>,
    now_ms: f64,
    ticks: u64,
    prefill_tokens: u64,
    /// Time-weighted block usage (block·ms) for mean occupancy.
    occ_block_ms: f64,
    /// Where trace events go; [`NoopSink`] on untraced runs, and every
    /// emission site checks `enabled()` before building an event.
    sink: &'t mut dyn TraceSink,
    /// This tick's work slices, buffered until the tick is priced (the
    /// span duration is only known after costing).
    pending: Vec<PendingSlice>,
    /// Cumulative preemptions, for the scheduler counter track.
    preempt_total: u64,
    /// Cumulative deadline sheds, for the scheduler counter track.
    shed_deadline_total: u64,
    /// Weighted-fair admission state: each tenant's virtual time,
    /// advanced by (worst-case blocks ÷ weight) per admission.
    tenant_vt: BTreeMap<u32, f64>,
    /// Time-weighted per-tenant block usage (block·ms), for the
    /// per-tenant occupancy accounting.
    tenant_block_ms: BTreeMap<u32, f64>,
    /// Pending elastic resizes, `at_ms`-sorted.
    scale_plan: VecDeque<ScaleEvent>,
    /// Pool blocks one chip's KV budget affords (elastic capacity unit).
    blocks_per_chip: usize,
    /// Cumulative output tokens, for window sampling.
    decode_total: u64,
    /// Cumulative output tokens of deadline-meeting finishes.
    good_tokens_total: u64,
    /// Completed trajectory windows (empty unless `cfg.window_ms`).
    windows: Vec<WindowSample>,
    /// End of the currently open window.
    next_window_end: f64,
    /// Cumulative counters at the last closed window boundary.
    win_cursor: WindowCursor,
    // Accounting-plane constants (the `base_*` values are per chip;
    // elastic resizes re-derive the effective ones).
    weight_bytes: f64,
    weight_macs_per_token: f64,
    kv_bytes_per_token: f64,
    attn_macs_per_ctx_token: f64,
    peak_flops: f64,
    offchip_bytes_per_s: f64,
    base_peak_flops: f64,
    base_offchip_bytes_per_s: f64,
}

/// Cumulative totals at the last closed window boundary; the next
/// [`WindowSample`]'s counts are deltas against these.
#[derive(Debug, Default, Clone, Copy)]
struct WindowCursor {
    finished: usize,
    dropped: usize,
    decode_tokens: u64,
    good_tokens: u64,
    occ_block_ms: f64,
    /// Clock at the last closed boundary (the open window's left edge).
    last_end_ms: f64,
}

/// Trajectory vectors stay bounded even under a pathologically small
/// window: past this many samples the remainder of the run folds into
/// the final window.
const MAX_WINDOWS: usize = 1 << 17;

/// One request's work inside a tick, waiting for the tick's price to
/// become a complete span.
#[derive(Debug, Clone, Copy)]
struct PendingSlice {
    id: usize,
    /// `"prefill"` or `"decode"`.
    kind: &'static str,
    tokens: u64,
    /// Context length attended (decode only).
    ctx: u64,
    /// Work redone after a preempt-and-recompute eviction (the request
    /// had already paged these tokens in at least once). Stamped on the
    /// trace slice so attribution can split productive prefill from
    /// recompute overhead.
    recompute: bool,
}

/// Request lanes start at tid 1; tid 0 is the scheduler/counter lane.
fn req_tid(id: usize) -> u64 {
    1 + id as u64
}

/// Fixed per-tick scheduling overhead (kernel launches, batching) in
/// seconds of engine time.
const TICK_OVERHEAD_S: f64 = 10e-6;

/// Hard cap on scheduler iterations — generous by orders of magnitude for
/// any sane workload; trips a livelocked scheduler into
/// [`ServeError::Livelock`] instead of hanging.
const MAX_TICKS: u64 = 10_000_000;

/// Scheduling order: arrival time (total order — corrupt arrivals never
/// reach the queues), then id as the tiebreak. Total and deterministic:
/// two requests sharing an arrival time (and even a deadline) always
/// order by id, so admission and victim choice are seed-stable.
fn sched_order(a: &RequestSpec, b: &RequestSpec) -> Ordering {
    a.arrival_ms.total_cmp(&b.arrival_ms).then(a.id.cmp(&b.id))
}

/// Priority-aware eviction order: the *maximum* under this ordering is
/// the preemption victim. Lower priority classes rank higher (evicted
/// first); within a class the latest-arrived goes, with id as the final
/// deterministic tiebreak — so equal-priority workloads behave exactly
/// like the pre-priority scheduler.
pub(crate) fn victim_order(a: &RequestSpec, b: &RequestSpec) -> Ordering {
    b.priority.cmp(&a.priority).then(sched_order(a, b))
}

/// The running request the eviction policy sacrifices under KV pressure
/// (only requests actually holding/consuming pool pages are candidates).
fn victim_index(running: &[Request]) -> Option<usize> {
    running
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r.phase, Phase::Prefill | Phase::Decode))
        .max_by(|(_, a), (_, b)| victim_order(&a.spec, &b.spec))
        .map(|(j, _)| j)
}

impl<'t> Engine<'t> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        accel: &Accelerator,
        model: &Model,
        workload: &[RequestSpec],
        cfg: &EngineConfig,
        faults: Option<FaultPlan>,
        dist: Option<DistPlane>,
        scale: &[ScaleEvent],
        sink: &'t mut dyn TraceSink,
    ) -> Result<Self, ServeError> {
        if workload.is_empty() {
            return Err(ServeError::EmptyWorkload);
        }
        cfg.validate()?;
        let layout = KvLayout::for_model(model, cfg.block_tokens);
        // A cluster pools every chip's KV budget (pages striped across
        // shards) and executes tensor-parallel, so compute and bandwidth
        // scale with the chip count. One chip leaves everything exact.
        let chips = dist.as_ref().map_or(1, DistPlane::chips);
        let blocks_per_chip = layout.blocks_in_budget(cfg.kv_budget);
        let total_blocks = blocks_per_chip * chips;
        // Malformed specs (non-finite arrival, zero lengths) can never be
        // scheduled — shed them before they can poison the arrival sort
        // or the virtual clock.
        let mut dropped = Vec::new();
        let mut incoming = Vec::new();
        for spec in workload.iter().copied() {
            let mut r = Request::new(spec);
            if spec.is_well_formed() {
                incoming.push(r);
            } else {
                let at = if spec.arrival_ms.is_finite() {
                    spec.arrival_ms
                } else {
                    0.0
                };
                r.mark_dropped(DropReason::CorruptSpec, at);
                dropped.push(r);
            }
        }
        incoming.sort_by(|a, b| sched_order(&a.spec, &b.spec));
        if sink.enabled() {
            sink.record(Event::process_name(TRACE_PID_ENGINE, "flat-serve engine"));
            sink.record(Event::thread_name(TRACE_PID_ENGINE, 0, "scheduler"));
            let chips = dist.as_ref().map_or(1, DistPlane::chips);
            if chips > 1 {
                for c in 0..chips {
                    let pid = 1 + c as u32;
                    sink.record(Event::process_name(pid, &format!("chip {c}")));
                    sink.record(Event::thread_name(pid, 0, "fabric"));
                }
            }
            // Corrupt specs never enter the queues: a lone instant marker
            // is their whole lifecycle.
            for r in &dropped {
                sink.record(
                    Event::instant(
                        "dropped",
                        "request",
                        r.drop_ms.unwrap_or(0.0) * US_PER_MS,
                        TRACE_PID_ENGINE,
                        req_tid(r.spec.id),
                    )
                    .arg("reason", "corrupt-spec"),
                );
            }
        }
        let h = model.hidden() as f64;
        Ok(Engine {
            cfg: *cfg,
            layout,
            pool: KvPool::new(total_blocks, cfg.block_tokens, cfg.dk),
            scale: 1.0 / (cfg.dk as f32).sqrt(),
            incoming: incoming.into(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            finished: Vec::new(),
            dropped,
            injector: faults.map(|plan| FaultInjector::new(plan, total_blocks)),
            dist,
            now_ms: 0.0,
            ticks: 0,
            prefill_tokens: 0,
            occ_block_ms: 0.0,
            sink,
            pending: Vec::new(),
            preempt_total: 0,
            shed_deadline_total: 0,
            tenant_vt: BTreeMap::new(),
            tenant_block_ms: BTreeMap::new(),
            scale_plan: scale.iter().copied().collect(),
            blocks_per_chip,
            decode_total: 0,
            good_tokens_total: 0,
            windows: Vec::new(),
            next_window_end: cfg.window_ms.unwrap_or(f64::INFINITY),
            win_cursor: WindowCursor::default(),
            weight_bytes: 2.0 * model_params(model),
            weight_macs_per_token: model_params(model),
            // KV streaming is priced at the configured element width,
            // relative to the f32 reference the layout is sized for.
            kv_bytes_per_token: layout.bytes_per_token.as_f64()
                * (cfg.precision.dtype().size_bytes() as f64 / 4.0),
            attn_macs_per_ctx_token: 2.0 * model.blocks() as f64 * h,
            peak_flops: accel.peak_flops() * chips as f64,
            offchip_bytes_per_s: accel.mem.offchip_bytes_per_s * chips as f64,
            base_peak_flops: accel.peak_flops(),
            base_offchip_bytes_per_s: accel.mem.offchip_bytes_per_s,
        })
    }

    fn run(mut self) -> Result<(ServeMetrics, Option<DistPlane>), ServeError> {
        let total = self.incoming.len() + self.dropped.len();
        while self.finished.len() + self.dropped.len() < total {
            self.ticks += 1;
            if self.ticks >= MAX_TICKS {
                return Err(ServeError::Livelock { ticks: self.ticks });
            }
            if let Some(inj) = self.injector.as_mut() {
                inj.on_tick(self.ticks, &mut self.pool);
            }
            self.admit_arrivals();
            if self.running.is_empty() && self.waiting.is_empty() {
                // Idle: jump to the next arrival.
                let Some(next) = self.incoming.front() else {
                    return Err(ServeError::Internal("queues empty with unfinished work"));
                };
                self.now_ms = self.now_ms.max(next.spec.arrival_ms);
                self.admit_arrivals();
            }
            self.apply_scale_events();
            self.shed_expired();
            self.admit_waiting();
            let work = self.execute_tick();
            let mut cost_s = self.tick_cost_s(&work);
            let mut coll_slices: Vec<CollectiveSlice> = Vec::new();
            let mut tick_exposed_ms = 0.0;
            if let Some(plane) = self.dist.as_mut() {
                // Collective time rides the same virtual clock as
                // compute: the tick is not done until the fabric is.
                // Under overlap pricing only the part compute cannot
                // hide extends the tick — `max(compute, collective)`
                // instead of their sum.
                let tokens = work.prefill_tokens + work.decode_steps;
                let coll_s = plane.collective_s(tokens);
                let payload = plane.tick_payload_bytes(tokens);
                let exposed_s = if plane.overlap() {
                    (coll_s - cost_s).max(0.0)
                } else {
                    coll_s
                };
                plane.fabric_busy_ms += coll_s * 1e3;
                plane.exposed_ms += exposed_s * 1e3;
                plane.payload_bytes += payload;
                cost_s += exposed_s;
                tick_exposed_ms = exposed_s * 1e3;
                if self.sink.enabled() {
                    coll_slices = plane.collective_slices(tokens);
                }
            }
            let skew = self
                .injector
                .as_mut()
                .map_or(1.0, FaultInjector::skew_factor);
            let dt_ms = cost_s * 1e3 * skew;
            let tick_start_ms = self.now_ms;
            let stamp = self.now_ms + dt_ms;
            self.now_ms = stamp;
            self.occ_block_ms += self.pool.used_blocks() as f64 * dt_ms;
            self.decode_total += work.decode_steps;
            if dt_ms > 0.0 {
                for r in &self.running {
                    let blocks = r.table.block_count();
                    if blocks > 0 {
                        *self.tenant_block_ms.entry(r.spec.tenant).or_insert(0.0) +=
                            blocks as f64 * dt_ms;
                    }
                }
            }
            if let Some(plane) = self.dist.as_mut() {
                plane.observe_used_blocks(self.pool.used_blocks());
            }
            if self.sink.enabled() {
                self.flush_tick_events(
                    tick_start_ms,
                    stamp,
                    dt_ms,
                    skew,
                    tick_exposed_ms,
                    &coll_slices,
                );
            }
            self.pending.clear();
            self.retire_and_requeue(stamp);
            self.sample_windows();
        }
        // Close the trajectory: one final (possibly partial) window
        // covers the tail of the run.
        if self.cfg.window_ms.is_some() && self.now_ms > self.win_cursor.last_end_ms {
            self.close_window(self.now_ms);
        }
        let total_blocks = self.pool.total_blocks();
        let kv = KvPoolStats {
            total_blocks,
            block_tokens: self.cfg.block_tokens,
            bytes_per_token: self.layout.bytes_per_token.as_u64(),
            peak_used_blocks: self.pool.peak_used(),
            mean_occupancy: if self.now_ms > 0.0 {
                self.occ_block_ms / (self.now_ms * total_blocks as f64)
            } else {
                0.0
            },
            peak_occupancy: self.pool.peak_used() as f64 / total_blocks as f64,
            dedup_hits: self.pool.dedup_hits(),
            peak_logical_blocks: self.pool.peak_logical(),
        };
        self.finished.sort_by_key(|r| r.spec.id);
        self.dropped.sort_by_key(|r| r.spec.id);
        let tenant_block_ms: Vec<(u32, f64)> = self
            .tenant_block_ms
            .iter()
            .map(|(&t, &ms)| (t, ms))
            .collect();
        Ok((
            ServeMetrics::collate(
                &self.finished,
                &self.dropped,
                kv,
                self.now_ms,
                self.ticks,
                self.prefill_tokens,
                &tenant_block_ms,
                std::mem::take(&mut self.windows),
            ),
            self.dist,
        ))
    }

    /// Closes every window boundary the clock has passed, then lets the
    /// caller force-close a final partial window at end of run.
    fn sample_windows(&mut self) {
        let Some(w) = self.cfg.window_ms else { return };
        while self.now_ms >= self.next_window_end {
            let end = self.next_window_end;
            self.close_window(end);
            self.next_window_end += w;
            if self.windows.len() >= MAX_WINDOWS {
                // Bounded trajectory: the rest of the run lands in the
                // final close at collate time.
                self.next_window_end = f64::INFINITY;
                return;
            }
        }
    }

    /// Emits one [`WindowSample`] for `(previous boundary, end_ms]` from
    /// the deltas against the cursor. The span is the actual elapsed
    /// virtual time, so the final partial window's rates stay honest.
    fn close_window(&mut self, end_ms: f64) {
        let span_ms = end_ms - self.win_cursor.last_end_ms;
        let total_blocks = self.pool.total_blocks().max(1);
        let d_occ = self.occ_block_ms - self.win_cursor.occ_block_ms;
        let d_good = self.good_tokens_total - self.win_cursor.good_tokens;
        let d_dec = self.decode_total - self.win_cursor.decode_tokens;
        self.windows.push(WindowSample {
            end_ms,
            finished: self.finished.len() - self.win_cursor.finished,
            dropped: self.dropped.len() - self.win_cursor.dropped,
            decode_tokens: d_dec,
            goodput_tokens_per_s: if span_ms > 0.0 {
                d_good as f64 / (span_ms / 1e3)
            } else {
                0.0
            },
            kv_occupancy: if span_ms > 0.0 {
                (d_occ / (span_ms * total_blocks as f64)).clamp(0.0, 1.0)
            } else {
                0.0
            },
            chips: self.dist.as_ref().map_or(1, DistPlane::chips),
            // The sampler parks `next_window_end` at infinity when it
            // hits MAX_WINDOWS; any close after that is the collapsed
            // tail, not a nominal-width window.
            truncated: self.next_window_end.is_infinite() && self.cfg.window_ms.is_some(),
        });
        self.win_cursor = WindowCursor {
            finished: self.finished.len(),
            dropped: self.dropped.len(),
            decode_tokens: self.decode_total,
            good_tokens: self.good_tokens_total,
            occ_block_ms: self.occ_block_ms,
            last_end_ms: end_ms,
        };
    }

    /// Applies every due elastic resize: re-stripe resident KV over the
    /// fabric (a stop-the-world stall on the virtual clock), grow or
    /// shrink the pooled capacity (evicting by [`victim_order`] until the
    /// resident set fits), and rescale the modeled compute, bandwidth,
    /// and collective pricing.
    fn apply_scale_events(&mut self) {
        while self
            .scale_plan
            .front()
            .is_some_and(|ev| ev.at_ms <= self.now_ms)
        {
            let Some(ev) = self.scale_plan.pop_front() else {
                break;
            };
            let Some(from) = self.dist.as_ref().map(DistPlane::chips) else {
                // No distributed plane: elastic events have nothing to
                // resize (single-chip entry points pass an empty plan).
                continue;
            };
            let to = ev.chips.max(1);
            if to == from {
                continue;
            }
            let applied_ms = self.now_ms;
            // Price the re-striping before capacity changes: what is
            // resident *now* is what moves.
            let block_bytes = self.kv_bytes_per_token * self.cfg.block_tokens as f64;
            let used = self.pool.used_blocks();
            let (migrated_blocks, migrated_bytes, stall_s) = match self.dist.as_ref() {
                Some(p) => p.migration_cost(used, block_bytes, to),
                None => (0, 0.0, 0.0),
            };
            // Capacity follows the chip count.
            let new_total = self.blocks_per_chip * to;
            let mut preempted = 0u64;
            let current = self.pool.total_blocks();
            if new_total > current {
                self.pool.grow(new_total - current);
            } else {
                let mut excess = current - new_total;
                while excess > 0 {
                    excess -= self.pool.confiscate(excess);
                    if excess == 0 {
                        break;
                    }
                    // Free list dry: evict the policy's victim so its
                    // blocks (refcount permitting) come back.
                    match victim_index(&self.running) {
                        Some(j) => {
                            self.preempt(j);
                            preempted += 1;
                        }
                        None => break, // nothing left to evict
                    }
                }
            }
            if let Some(plane) = self.dist.as_mut() {
                plane.rescale(to);
            }
            self.peak_flops = self.base_peak_flops * to as f64;
            self.offchip_bytes_per_s = self.base_offchip_bytes_per_s * to as f64;
            let migration_ms = stall_s * 1e3;
            self.now_ms += migration_ms;
            if self.sink.enabled() {
                self.sink.record(
                    Event::instant(
                        "scale",
                        "engine",
                        applied_ms * US_PER_MS,
                        TRACE_PID_ENGINE,
                        0,
                    )
                    .arg("from_chips", from as u64)
                    .arg("to_chips", to as u64)
                    .arg("migrated_blocks", migrated_blocks),
                );
            }
            if let Some(plane) = self.dist.as_mut() {
                plane.scale_log.push(ScaleEventRecord {
                    at_ms: ev.at_ms,
                    applied_ms,
                    from_chips: from,
                    to_chips: to,
                    migrated_blocks,
                    migrated_bytes,
                    migration_ms,
                    preempted,
                });
            }
        }
    }

    /// Emits this tick's trace events: the buffered per-request work
    /// slices as complete spans covering the whole tick, the per-chip
    /// collective slices packed against the tick's end, and the KV /
    /// queue / scheduler counter samples at the tick's close. Only called
    /// when the sink is enabled.
    fn flush_tick_events(
        &mut self,
        tick_start_ms: f64,
        stamp_ms: f64,
        dt_ms: f64,
        skew: f64,
        exposed_ms: f64,
        coll: &[CollectiveSlice],
    ) {
        let ts = tick_start_ms * US_PER_MS;
        let dur = dt_ms * US_PER_MS;
        for s in &self.pending {
            let mut ev =
                Event::complete(s.kind, "request", ts, dur, TRACE_PID_ENGINE, req_tid(s.id))
                    .arg("tokens", s.tokens);
            if s.kind == "decode" {
                ev = ev.arg("ctx_tokens", s.ctx);
            }
            if s.recompute {
                ev = ev.arg("recompute", 1u64);
            }
            self.sink.record(ev);
        }
        // The fabric time compute could not hide: one slice on the
        // scheduler lane, packed against the tick's end exactly like the
        // per-chip collective slices (it *is* their unhidden tail).
        // Attribution reads this to price the collective-exposed phase.
        // Category "engine", not "collective": the collective category
        // is reserved for per-chip fabric lanes carrying bytes/energy
        // args (a pinned trace contract).
        if exposed_ms > 0.0 {
            let d = exposed_ms * US_PER_MS * skew;
            self.sink.record(
                Event::complete(
                    "exposed",
                    "engine",
                    stamp_ms * US_PER_MS - d,
                    d,
                    TRACE_PID_ENGINE,
                    0,
                )
                .arg(
                    "overlap",
                    u64::from(self.dist.as_ref().is_some_and(DistPlane::overlap)),
                ),
            );
        }
        // Collectives close flush with the tick: stack the slices (skew
        // scales them exactly as it scaled the tick) back from `stamp`.
        let chips = self.dist.as_ref().map_or(0, DistPlane::chips);
        let total_us: f64 = coll.iter().map(|s| s.dur_s * 1e3 * US_PER_MS * skew).sum();
        let mut t0 = stamp_ms * US_PER_MS - total_us;
        for s in coll {
            let d = s.dur_s * 1e3 * US_PER_MS * skew;
            for chip in 0..chips {
                self.sink.record(
                    Event::complete(s.op, "collective", t0, d, 1 + chip as u32, 0)
                        .arg("bytes", s.bytes)
                        .arg("energy_pj", s.energy_pj),
                );
            }
            t0 += d;
        }
        let end = stamp_ms * US_PER_MS;
        self.sink.record(
            Event::counter("kv_blocks", "engine", end, TRACE_PID_ENGINE, 0)
                .arg("used", self.pool.used_blocks() as u64)
                .arg("free", self.pool.free_blocks() as u64),
        );
        self.sink.record(
            Event::counter("queues", "engine", end, TRACE_PID_ENGINE, 0)
                .arg("running", self.running.len() as u64)
                .arg("waiting", self.waiting.len() as u64),
        );
        self.sink.record(
            Event::counter("sched", "engine", end, TRACE_PID_ENGINE, 0)
                .arg("preemptions", self.preempt_total)
                .arg("shed_deadline", self.shed_deadline_total)
                .arg("dropped", self.dropped.len() as u64),
        );
    }

    /// Moves arrived requests into the waiting queue (both are
    /// arrival-sorted, so this is a prefix splice).
    fn admit_arrivals(&mut self) {
        while self
            .incoming
            .front()
            .is_some_and(|r| r.spec.arrival_ms <= self.now_ms)
        {
            if let Some(r) = self.incoming.pop_front() {
                if self.sink.enabled() {
                    let tid = req_tid(r.spec.id);
                    let ts = r.spec.arrival_ms * US_PER_MS;
                    self.sink.record(Event::thread_name(
                        TRACE_PID_ENGINE,
                        tid,
                        &format!("req {}", r.spec.id),
                    ));
                    self.sink.record(
                        Event::begin("request", "request", ts, TRACE_PID_ENGINE, tid)
                            .arg("tenant", u64::from(r.spec.tenant)),
                    );
                    self.sink
                        .record(Event::begin("queued", "request", ts, TRACE_PID_ENGINE, tid));
                }
                self.waiting.push_back(r);
            }
        }
    }

    /// Deadline shedding: any queued request already past its SLO is
    /// dropped now rather than admitted, run, and delivered late — the
    /// capacity it would burn goes to requests that can still meet
    /// theirs. (Running requests are never killed mid-flight; the SLO is
    /// enforced at the queue, where shedding is free.)
    fn shed_expired(&mut self) {
        let now = self.now_ms;
        let mut i = 0;
        while i < self.waiting.len() {
            let expired = self.waiting[i].spec.deadline_ms.is_some_and(|d| now > d);
            if expired {
                if let Some(mut r) = self.waiting.remove(i) {
                    r.mark_dropped(DropReason::DeadlineExceeded, now);
                    self.shed_deadline_total += 1;
                    self.trace_queue_drop(r.spec.id, DropReason::DeadlineExceeded, now);
                    self.dropped.push(r);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Sheds the waiting-queue entry at `idx` with `reason`.
    fn drop_waiting_at(&mut self, idx: usize, reason: DropReason) {
        if let Some(mut r) = self.waiting.remove(idx) {
            r.mark_dropped(reason, self.now_ms);
            self.trace_queue_drop(r.spec.id, reason, self.now_ms);
            self.dropped.push(r);
        }
    }

    /// Closes a queued request's open spans with a drop marker: the
    /// queued span ends, the drop reason lands as an instant, and the
    /// request span closes — keeping every lane B/E-balanced.
    fn trace_queue_drop(&mut self, id: usize, reason: DropReason, now_ms: f64) {
        if !self.sink.enabled() {
            return;
        }
        let tid = req_tid(id);
        let ts = now_ms * US_PER_MS;
        self.sink
            .record(Event::end("queued", "request", ts, TRACE_PID_ENGINE, tid));
        self.sink.record(
            Event::instant("dropped", "request", ts, TRACE_PID_ENGINE, tid)
                .arg("reason", reason.to_string().as_str()),
        );
        self.sink
            .record(Event::end("request", "request", ts, TRACE_PID_ENGINE, tid));
    }

    /// The waiting-queue index weighted-fair admission serves next: each
    /// backlogged tenant's *head* (its earliest-arrived waiting request)
    /// competes on tenant virtual time, smallest first, tenant id as the
    /// deterministic tiebreak. Newly backlogged (or long-idle) tenants
    /// join at the current minimum so they can neither claim credit for
    /// idle history nor be starved by it. With a single tenant this is
    /// exactly FIFO head admission.
    fn pick_admission_candidate(&mut self) -> Option<usize> {
        // First waiting index per tenant (the queue is arrival-sorted, so
        // the first hit is that tenant's head).
        let mut heads: BTreeMap<u32, usize> = BTreeMap::new();
        for (i, r) in self.waiting.iter().enumerate() {
            heads.entry(r.spec.tenant).or_insert(i);
        }
        if heads.is_empty() {
            return None;
        }
        // Normalize: backlogged tenants never lag the pack's minimum.
        let vmin = heads
            .keys()
            .filter_map(|t| self.tenant_vt.get(t).copied())
            .fold(f64::INFINITY, f64::min);
        let vmin = if vmin.is_finite() { vmin } else { 0.0 };
        for t in heads.keys() {
            let vt = self.tenant_vt.entry(*t).or_insert(vmin);
            if *vt < vmin {
                *vt = vmin;
            }
        }
        heads
            .iter()
            .min_by(|(ta, _), (tb, _)| {
                let va = self.tenant_vt.get(ta).copied().unwrap_or(0.0);
                let vb = self.tenant_vt.get(tb).copied().unwrap_or(0.0);
                va.total_cmp(&vb).then(ta.cmp(tb))
            })
            .map(|(_, &i)| i)
    }

    /// Weighted-fair admission under backpressure: the next tenant's head
    /// (by tenant virtual time) starts prefill only when the pool can
    /// page its whole prompt plus the first decode token. A candidate
    /// whose *worst-case* footprint (`prompt + output`) exceeds the
    /// entire pool is provably unservable — admitted, it would exhaust
    /// the pool, self-preempt, re-queue, and livelock — so it is rejected
    /// here with [`DropReason::Infeasible`]. On admission the tenant is
    /// charged worst-case blocks over its weight, so heavier tenants
    /// drain proportionally more queue under contention. (Feasible
    /// candidates never need more than the feasibility bound, so they are
    /// eventually admitted once the pool drains.)
    fn admit_waiting(&mut self) {
        while self.running.len() < self.cfg.max_batch {
            let Some(idx) = self.pick_admission_candidate() else {
                break;
            };
            let spec = self.waiting[idx].spec;
            let worst_case = spec.prompt_len.checked_add(spec.output_len);
            let infeasible =
                worst_case.is_none_or(|t| self.layout.blocks_for(t) > self.pool.total_blocks());
            if infeasible {
                self.drop_waiting_at(idx, DropReason::Infeasible);
                continue;
            }
            let needed = self.layout.blocks_for(spec.prompt_len + 1);
            if needed > self.pool.free_blocks() {
                break;
            }
            if let Some(mut r) = self.waiting.remove(idx) {
                if self.sink.enabled() {
                    self.sink.record(Event::end(
                        "queued",
                        "request",
                        self.now_ms * US_PER_MS,
                        TRACE_PID_ENGINE,
                        req_tid(r.spec.id),
                    ));
                }
                r.phase = Phase::Prefill;
                // Charge worst-case footprint over weight: the classic
                // virtual-time advance of weighted fair queueing.
                let charge = self.layout.blocks_for(spec.prompt_len + spec.output_len) as f64
                    / (f64::from(spec.weight_milli.max(1)) / 1000.0);
                *self.tenant_vt.entry(spec.tenant).or_insert(0.0) += charge;
                self.running.push(r);
            }
        }
    }

    /// One iteration-level batch: prefill chunks, then a decode step for
    /// every decoding request. Returns the tick's work tally.
    fn execute_tick(&mut self) -> TickWork {
        let mut work = TickWork::default();
        let mut budget = self.cfg.prefill_chunk;
        for i in 0..self.running.len() {
            if budget == 0 {
                break;
            }
            if self.running[i].phase != Phase::Prefill {
                continue;
            }
            let take = budget.min(self.running[i].spec.prompt_len - self.running[i].prefilled);
            let mut appended = 0;
            for _ in 0..take {
                let pos = self.running[i].prefilled;
                let spec = self.running[i].spec;
                let k = self.embed(&spec, pos, SALT_K, &[]);
                let v = self.embed(&spec, pos, SALT_V, &[]);
                if !self.append_with_preemption(i, &k, &v) {
                    break; // `i` itself was preempted.
                }
                self.running[i].prefilled += 1;
                appended += 1;
                // Copy-on-write dedup: once a block is full and still
                // entirely inside the shared prefix, seal it — identical
                // content already published by a sibling replaces the
                // private copy. Capacity-only: the numeric plane reads
                // the same bytes either way.
                if self.cfg.dedup
                    && self.running[i].prefilled <= spec.shared_prefix_len()
                    && self.running[i]
                        .table
                        .tokens()
                        .is_multiple_of(self.cfg.block_tokens)
                {
                    let table = &mut self.running[i].table;
                    self.pool.seal_last_block(table);
                }
            }
            budget -= appended;
            work.prefill_tokens += appended as u64;
            self.prefill_tokens += appended as u64;
            if appended > 0 && self.sink.enabled() {
                self.pending.push(PendingSlice {
                    id: self.running[i].spec.id,
                    kind: "prefill",
                    tokens: appended as u64,
                    ctx: 0,
                    recompute: self.running[i].preemptions > 0,
                });
            }
            let r = &self.running[i];
            if r.phase == Phase::Prefill && r.prefilled == r.spec.prompt_len {
                // Prompt fully paged in: probe the prefix once to seed the
                // sequential generation state, then start decoding.
                let spec = r.spec;
                let q = self.embed(&spec, spec.prompt_len - 1, SALT_Q, &[]);
                let out = decode_attention_with(
                    &q,
                    self.pool.rows(&self.running[i].table),
                    self.scale,
                    self.cfg.precision,
                    self.cfg.softmax,
                );
                self.running[i].last_out = out;
                self.running[i].phase = Phase::Decode;
            }
        }
        for i in 0..self.running.len() {
            if self.running[i].phase != Phase::Decode {
                continue;
            }
            let r = &self.running[i];
            let (spec, pos) = (r.spec, r.spec.prompt_len + r.generated);
            let id = spec.id;
            let prev = r.last_out.clone();
            let q = self.embed(&spec, pos, SALT_Q, &prev);
            let k = self.embed(&spec, pos, SALT_K, &prev);
            let v = self.embed(&spec, pos, SALT_V, &prev);
            if !self.append_with_preemption(i, &k, &v) {
                continue; // `i` itself was preempted; it restarts later.
            }
            let out = decode_attention_with(
                &q,
                self.pool.rows(&self.running[i].table),
                self.scale,
                self.cfg.precision,
                self.cfg.softmax,
            );
            let ctx = self.running[i].table.tokens() as u64;
            work.decode_context_tokens += ctx;
            work.decode_steps += 1;
            if self.sink.enabled() {
                self.pending.push(PendingSlice {
                    id,
                    kind: "decode",
                    tokens: 1,
                    ctx,
                    recompute: false,
                });
            }
            let r = &mut self.running[i];
            r.last_out = out;
            r.generated += 1;
            if r.generated == 1 {
                r.first_token_ms = Some(f64::NAN); // stamped after costing
            }
            if r.generated == r.spec.output_len {
                r.phase = Phase::Finished;
                r.finish_ms = Some(f64::NAN);
                let table = &mut self.running[i].table;
                // Release pages immediately so later requests in this same
                // tick can reuse them.
                self.pool.release(table);
            }
        }
        work
    }

    /// Appends one K/V row for `running[i]`, evicting by [`victim_order`]
    /// (lowest priority class first, latest-arrived within a class) as
    /// long as the pool is exhausted. Returns `false` if `i` itself was
    /// the eviction victim.
    fn append_with_preemption(&mut self, i: usize, k: &[f32], v: &[f32]) -> bool {
        loop {
            let (pool, running) = (&mut self.pool, &mut self.running);
            if pool.try_append(&mut running[i].table, k, v) {
                return true;
            }
            // `running[i]` is itself Prefill/Decode when this is called,
            // so a victim always exists; the fallback preempts `i` rather
            // than trusting that invariant with a panic.
            let victim = victim_index(&self.running).unwrap_or(i);
            self.preempt(victim);
            if victim == i {
                return false;
            }
        }
    }

    /// Recompute-style preemption: release pages, erase progress, and mark
    /// for re-queueing (moved back to `waiting` at end of tick).
    fn preempt(&mut self, j: usize) {
        let table = &mut self.running[j].table;
        self.pool.release(table);
        self.running[j].reset_for_requeue();
        self.preempt_total += 1;
    }

    /// Drains finished and preempted requests out of the running set,
    /// stamping this tick's completion time on the events it produced.
    /// The fault injector may corrupt a finished request's stamps to NaN
    /// here — downstream metrics must absorb that, and the chaos suite
    /// checks they do.
    fn retire_and_requeue(&mut self, stamp_ms: f64) {
        let mut i = 0;
        while i < self.running.len() {
            match self.running[i].phase {
                Phase::Finished => {
                    let mut r = self.running.remove(i);
                    let mut stamp = |t: f64| match self.injector.as_mut() {
                        Some(inj) => inj.latency(t),
                        None => t,
                    };
                    if r.first_token_ms.is_some_and(f64::is_nan) {
                        r.first_token_ms = Some(stamp(stamp_ms));
                    }
                    r.finish_ms = Some(stamp(stamp_ms));
                    if r.met_deadline() {
                        self.good_tokens_total += r.generated as u64;
                    }
                    // Trace on the uncorrupted virtual clock: the fault
                    // injector may smear the metrics' stamps to NaN, but
                    // a trace must stay well-ordered and parseable.
                    if self.sink.enabled() {
                        self.sink.record(
                            Event::end(
                                "request",
                                "request",
                                stamp_ms * US_PER_MS,
                                TRACE_PID_ENGINE,
                                req_tid(r.spec.id),
                            )
                            .arg("generated", r.generated as u64),
                        );
                    }
                    self.finished.push(r);
                }
                Phase::Waiting => {
                    let r = self.running.remove(i);
                    if self.sink.enabled() {
                        let tid = req_tid(r.spec.id);
                        let ts = stamp_ms * US_PER_MS;
                        self.sink.record(
                            Event::instant("preempted", "request", ts, TRACE_PID_ENGINE, tid)
                                .arg("count", r.preemptions),
                        );
                        self.sink.record(Event::begin(
                            "queued",
                            "request",
                            ts,
                            TRACE_PID_ENGINE,
                            tid,
                        ));
                    }
                    let at = self
                        .waiting
                        .iter()
                        .position(|w| sched_order(&w.spec, &r.spec) == Ordering::Greater)
                        .unwrap_or(self.waiting.len());
                    self.waiting.insert(at, r);
                }
                _ => {
                    if self.running[i].first_token_ms.is_some_and(f64::is_nan) {
                        self.running[i].first_token_ms = Some(stamp_ms);
                    }
                    i += 1;
                }
            }
        }
    }

    /// Prices one tick on the modeled accelerator: the batch streams the
    /// weights once, every decode step streams its context's KV at the
    /// full all-layer byte cost, and all token work shares the MAC array.
    /// Compute and memory overlap (double-buffered), so the tick takes the
    /// slower of the two, plus a fixed scheduling overhead.
    fn tick_cost_s(&self, work: &TickWork) -> f64 {
        let tokens = work.prefill_tokens + work.decode_steps;
        if tokens == 0 {
            return TICK_OVERHEAD_S;
        }
        let ctx = work.decode_context_tokens as f64;
        let macs = tokens as f64 * self.weight_macs_per_token
            + ctx * self.attn_macs_per_ctx_token
            + work.prefill_tokens as f64 * self.attn_macs_per_ctx_token;
        let compute_s = 2.0 * macs / self.peak_flops;
        let bytes = self.weight_bytes
            + ctx * self.kv_bytes_per_token
            + work.prefill_tokens as f64 * self.kv_bytes_per_token;
        let memory_s = bytes / self.offchip_bytes_per_s;
        compute_s.max(memory_s) + TICK_OVERHEAD_S
    }

    /// The numeric plane's token embedding: a seeded pseudo-random row,
    /// blended with the previous step's attention output when one exists —
    /// the dependence that makes generation sequential.
    ///
    /// Positions inside a request's shared prefix draw from a stream
    /// keyed on the *template* id instead of the request id, so every
    /// request carrying the same template produces byte-identical prefix
    /// K/V rows — the property block-level dedup keys on. The keying is
    /// independent of `cfg.dedup`, which is why dedup-on and dedup-off
    /// runs stay token-identical. Non-template positions keep the
    /// historical per-request stream exactly.
    fn embed(&self, spec: &RequestSpec, pos: usize, salt: u64, prev_out: &[f32]) -> Vec<f32> {
        let ident = if pos < spec.shared_prefix_len() {
            spec.prefix_template
                .unwrap_or_default()
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(0x9E6C_63D0_876A_68EE)
        } else {
            (spec.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        let stream = self
            .cfg
            .seed
            .wrapping_add(ident)
            .wrapping_add((pos as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(salt);
        let mut rng = StdRng::seed_from_u64(stream);
        (0..self.cfg.dk)
            .map(|lane| {
                let noise = rng.gen::<f32>() * 2.0 - 1.0;
                if prev_out.is_empty() {
                    noise
                } else {
                    0.5 * noise + 0.5 * prev_out[(lane + 1) % prev_out.len()]
                }
            })
            .collect()
    }
}

const SALT_Q: u64 = 0x51;
const SALT_K: u64 = 0x4B;
const SALT_V: u64 = 0x56;

/// Work executed in one tick, for the cost model.
#[derive(Debug, Default, Clone, Copy)]
struct TickWork {
    prefill_tokens: u64,
    decode_steps: u64,
    /// Sum over decode steps of the context length attended.
    decode_context_tokens: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload(n: usize) -> Vec<RequestSpec> {
        (0..n)
            .map(|id| RequestSpec::new(id, id as f64 * 0.5, 24 + (id * 7) % 40, 4 + id % 9))
            .collect()
    }

    fn cfg(kv_budget: Bytes) -> EngineConfig {
        EngineConfig {
            block_tokens: 16,
            prefill_chunk: 64,
            max_batch: 8,
            dk: 16,
            kv_budget,
            seed: 7,
            precision: ComputePrecision::F32,
            softmax: SoftmaxKind::Exact,
            dedup: false,
            window_ms: None,
        }
    }

    #[test]
    fn conservation_every_request_finishes_exactly_once() {
        let model = Model::by_name("bert").unwrap();
        let wl = tiny_workload(24);
        let m = serve(
            &Accelerator::edge(),
            &model,
            &wl,
            &cfg(Bytes::from_mib(512)),
        )
        .unwrap();
        assert_eq!(m.requests, 24);
        assert_eq!(m.finished, 24);
        assert_eq!(m.dropped, 0);
        assert_eq!(
            m.decode_tokens,
            wl.iter().map(|r| r.output_len as u64).sum::<u64>()
        );
        assert_eq!(
            m.prefill_tokens,
            wl.iter().map(|r| r.prompt_len as u64).sum::<u64>()
        );
    }

    #[test]
    fn latencies_and_occupancy_are_nonzero_and_ordered() {
        let model = Model::by_name("bert").unwrap();
        let m = serve(
            &Accelerator::cloud(),
            &model,
            &tiny_workload(16),
            &cfg(Bytes::from_mib(512)),
        )
        .unwrap();
        assert!(m.ttft.p50_ms > 0.0);
        assert!(m.tpot.p50_ms > 0.0);
        assert!(m.ttft.p50_ms <= m.ttft.p95_ms && m.ttft.p95_ms <= m.ttft.p99_ms);
        assert!(m.e2e.p99_ms <= m.makespan_ms);
        assert!(m.kv.peak_occupancy > 0.0 && m.kv.peak_occupancy <= 1.0);
        assert!(m.kv.mean_occupancy > 0.0 && m.kv.mean_occupancy <= m.kv.peak_occupancy);
        assert!(m.decode_tokens_per_s > 0.0);
        assert_eq!(
            m.goodput_tokens_per_s, m.decode_tokens_per_s,
            "without deadlines goodput equals throughput"
        );
    }

    #[test]
    fn tight_pool_preempts_but_still_finishes_everyone() {
        let model = Model::by_name("bert").unwrap();
        // ~36 KiB/token ⇒ a 40 MiB pool holds ~71 blocks of 16 tokens;
        // each request needs up to 5 blocks, so 8 running plus queue
        // pressure forces eviction churn.
        let budget = Bytes::from_mib(3);
        let wl = tiny_workload(24);
        let m = serve(&Accelerator::edge(), &model, &wl, &cfg(budget)).unwrap();
        assert_eq!(m.finished, 24);
        assert!(m.preemptions > 0, "expected KV pressure to preempt");
        assert!(m.kv.peak_occupancy > 0.9);
    }

    #[test]
    fn deterministic_in_seed_and_workload() {
        let model = Model::by_name("bert").unwrap();
        let wl = tiny_workload(12);
        let c = cfg(Bytes::from_mib(256));
        let a = serve(&Accelerator::edge(), &model, &wl, &c).unwrap();
        let b = serve(&Accelerator::edge(), &model, &wl, &c).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        let mut c2 = c;
        c2.seed = 8;
        let d = serve(&Accelerator::edge(), &model, &wl, &c2).unwrap();
        assert_ne!(
            a.checksum, d.checksum,
            "numeric plane must depend on the seed"
        );
    }

    /// Regression: an oversized request used to trip an up-front panic
    /// (and, admitted, would self-preempt forever in
    /// `append_with_preemption`). It must now terminate promptly with the
    /// request dropped at admission and every other request served.
    #[test]
    fn oversized_request_is_dropped_at_admission_not_livelocked() {
        let model = Model::by_name("bert").unwrap();
        let mut wl = tiny_workload(4);
        wl.push(RequestSpec::new(4, 0.3, 100_000, 1));
        // 4 MiB ⇒ ~7 blocks: every tiny request fits, the oversized one
        // (100k tokens ≫ the pool) provably cannot.
        let m = serve(&Accelerator::edge(), &model, &wl, &cfg(Bytes::from_mib(4))).unwrap();
        assert_eq!(m.requests, 5);
        assert_eq!(m.finished, 4);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.drops.infeasible, 1);
        assert!(
            m.ticks < 100_000,
            "rejection must be prompt, not a livelock timeout"
        );
    }

    #[test]
    fn sole_oversized_request_terminates_too() {
        let model = Model::by_name("bert").unwrap();
        let wl = vec![RequestSpec::new(0, 0.0, 100_000, 1)];
        let m = serve(&Accelerator::edge(), &model, &wl, &cfg(Bytes::from_mib(1))).unwrap();
        assert_eq!((m.finished, m.dropped), (0, 1));
        assert_eq!(m.drops.infeasible, 1);
    }

    #[test]
    fn queued_past_deadline_is_shed_and_counted() {
        let model = Model::by_name("bert").unwrap();
        // Serialize admission (max_batch 1) so the trailing request waits
        // behind the first; its microscopic deadline expires in the queue.
        let mut wl = tiny_workload(2);
        wl[1].deadline_ms = Some(wl[1].arrival_ms + 1e-6);
        let mut c = cfg(Bytes::from_mib(64));
        c.max_batch = 1;
        let m = serve(&Accelerator::edge(), &model, &wl, &c).unwrap();
        assert_eq!(m.requests, 2);
        assert_eq!(m.finished, 1);
        assert_eq!(m.drops.deadline, 1);
        assert!(
            m.goodput_tokens_per_s <= m.decode_tokens_per_s,
            "shed work never counts toward goodput"
        );
    }

    #[test]
    fn corrupt_specs_are_shed_not_scheduled() {
        let model = Model::by_name("bert").unwrap();
        let mut wl = tiny_workload(3);
        wl.push(RequestSpec {
            arrival_ms: f64::NAN,
            ..RequestSpec::new(3, 0.0, 8, 2)
        });
        wl.push(RequestSpec::new(4, 0.1, 0, 2));
        wl.push(RequestSpec::new(5, 0.2, 8, 0));
        let m = serve(&Accelerator::edge(), &model, &wl, &cfg(Bytes::from_mib(64))).unwrap();
        assert_eq!(m.requests, 6);
        assert_eq!(m.finished, 3);
        assert_eq!(m.drops.corrupt, 3);
    }

    #[test]
    fn empty_workload_and_bad_config_are_typed_errors() {
        let model = Model::by_name("bert").unwrap();
        let accel = Accelerator::edge();
        assert_eq!(
            serve(&accel, &model, &[], &cfg(Bytes::from_mib(64))).unwrap_err(),
            ServeError::EmptyWorkload
        );
        for mangle in [
            |c: &mut EngineConfig| c.block_tokens = 0,
            |c: &mut EngineConfig| c.prefill_chunk = 0,
            |c: &mut EngineConfig| c.max_batch = 0,
            |c: &mut EngineConfig| c.dk = 0,
        ] {
            let mut c = cfg(Bytes::from_mib(64));
            mangle(&mut c);
            let err = serve(&accel, &model, &tiny_workload(2), &c).unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
        }
    }

    #[test]
    fn decode_output_matches_batched_reference() {
        // Re-run one request's generation outside the engine and check the
        // engine's checksum contribution: a 1-request workload's final
        // attention output must equal a hand-rolled replay.
        let model = Model::by_name("bert").unwrap();
        let wl = vec![RequestSpec::new(0, 0.0, 8, 3)];
        let c = cfg(Bytes::from_mib(64));
        let a = serve(&Accelerator::edge(), &model, &wl, &c).unwrap();
        let b = serve(&Accelerator::edge(), &model, &wl, &c).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert!(a.checksum.is_finite() && a.checksum != 0.0);
    }

    /// Satellite pin: a single instantaneous-ish request must not report
    /// an infinite token rate.
    #[test]
    fn single_request_rates_are_finite() {
        let model = Model::by_name("bert").unwrap();
        let wl = vec![RequestSpec::new(0, 0.0, 4, 1)];
        let m = serve(&Accelerator::edge(), &model, &wl, &cfg(Bytes::from_mib(64))).unwrap();
        assert!(m.decode_tokens_per_s.is_finite());
        assert!(m.goodput_tokens_per_s.is_finite());
    }
}
