//! Typed serving errors and request drop reasons.
//!
//! The engine never panics on adversarial input: configuration and
//! workload problems surface as [`ServeError`]s before any work runs, and
//! per-request hazards (a prompt that could never fit in the KV pool, a
//! missed deadline, a corrupted spec) become [`DropReason`]s — the request
//! is shed with its reason counted in the metrics instead of wedging the
//! scheduler.

use std::fmt;

/// Why the engine refused to run (or aborted) a serving workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The workload contained no requests.
    EmptyWorkload,
    /// An [`EngineConfig`](crate::EngineConfig) knob is out of range
    /// (zero block size, zero batch, …).
    InvalidConfig(String),
    /// A [`WorkloadSpec`](crate::WorkloadSpec) is degenerate (no
    /// requests, non-positive rate, zero token means).
    InvalidWorkload(String),
    /// The scheduler stopped making progress and tripped its tick cap —
    /// a bug guard, not an expected outcome.
    Livelock {
        /// Ticks executed before the engine gave up.
        ticks: u64,
    },
    /// An internal invariant broke; the engine aborted rather than loop.
    Internal(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptyWorkload => write!(f, "workload must contain at least one request"),
            ServeError::InvalidConfig(why) => write!(f, "invalid engine config: {why}"),
            ServeError::InvalidWorkload(why) => write!(f, "invalid workload spec: {why}"),
            ServeError::Livelock { ticks } => {
                write!(f, "scheduler livelock: no progress after {ticks} ticks")
            }
            ServeError::Internal(why) => write!(f, "internal engine invariant broken: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a single request was shed instead of served.
///
/// Every request the engine accepts either finishes or is dropped with
/// exactly one of these reasons — the conservation invariant the chaos
/// suite asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The request's worst-case KV footprint (`prompt + output` tokens)
    /// exceeds the whole pool: it could never run to completion, so it is
    /// rejected at admission instead of livelocking in self-preemption.
    Infeasible,
    /// The request was still queued past its deadline and was shed.
    DeadlineExceeded,
    /// The spec itself is malformed (non-finite arrival, zero prompt or
    /// output length) — typically the work of the fault injector.
    CorruptSpec,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::Infeasible => write!(f, "infeasible"),
            DropReason::DeadlineExceeded => write!(f, "deadline-exceeded"),
            DropReason::CorruptSpec => write!(f, "corrupt-spec"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_one_line_diagnostics() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::EmptyWorkload, "at least one request"),
            (
                ServeError::InvalidConfig("block_tokens is zero".into()),
                "block_tokens",
            ),
            (ServeError::Livelock { ticks: 42 }, "42 ticks"),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
            assert!(!msg.contains('\n'), "diagnostics must be one line");
        }
    }

    #[test]
    fn drop_reasons_have_stable_labels() {
        assert_eq!(DropReason::Infeasible.to_string(), "infeasible");
        assert_eq!(
            DropReason::DeadlineExceeded.to_string(),
            "deadline-exceeded"
        );
        assert_eq!(DropReason::CorruptSpec.to_string(), "corrupt-spec");
    }
}
