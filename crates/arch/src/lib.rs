//! Abstract DNN accelerator hardware model.
//!
//! `flat-arch` describes the machine the FLAT dataflow runs on, in exactly
//! the terms the paper uses (§3.1, §5, Figure 5):
//!
//! * a [`PeArray`] of MAC units, each with a local scratchpad (SL),
//! * a shared on-chip **global scratchpad** (SG) behind a high-bandwidth
//!   on-chip interconnect,
//! * off-chip DRAM/HBM behind a much slower link ([`MemorySystem`]),
//! * distribution/reduction [`Noc`]s (systolic, tree, crossbar) whose fill
//!   and drain latencies charge every tile switch,
//! * a special-function unit ([`Sfu`]) that computes softmax between the
//!   Logit and Attend stages,
//! * an Accelergy-style per-action [`EnergyTable`].
//!
//! The two platform presets of Figure 7(a) are [`Accelerator::edge`]
//! (32×32 PEs, 512 KiB SG, 1 TB/s on-chip, 50 GB/s off-chip) and
//! [`Accelerator::cloud`] (256×256 PEs, 32 MiB, 8 TB/s, 400 GB/s), both at
//! 1 GHz.
//!
//! # Example
//!
//! ```
//! use flat_arch::Accelerator;
//!
//! let edge = Accelerator::edge();
//! assert_eq!(edge.pe.count(), 1024);
//! // 1024 MACs/cycle at 1 GHz, 2 FLOPs per MAC.
//! assert_eq!(edge.peak_flops(), 2.048e12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod area;
mod energy;
mod l2sram;
mod memory;
mod noc;
mod pe;
mod sfu;

pub use accel::{Accelerator, AcceleratorBuilder};
pub use area::AreaModel;
pub use energy::{ActivityCounts, EnergyBreakdown, EnergyTable};
pub use l2sram::L2Sram;
pub use memory::MemorySystem;
pub use noc::Noc;
pub use pe::PeArray;
pub use sfu::Sfu;
