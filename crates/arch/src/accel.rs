//! The assembled accelerator and the paper's platform presets.

use crate::{EnergyTable, MemorySystem, Noc, PeArray, Sfu};
use flat_tensor::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete accelerator description: everything the FLAT cost model needs
/// to price a (workload, dataflow) pair.
///
/// Matches Figure 5 of the paper: PE array with per-PE local scratchpads
/// (SL), a shared global scratchpad (SG), distribution/reduction NoC,
/// special-function unit, and a two-level memory system.
///
/// Construct one with [`Accelerator::edge`], [`Accelerator::cloud`], or
/// [`Accelerator::builder`].
///
/// # Example
///
/// ```
/// use flat_arch::{Accelerator, Noc};
/// use flat_tensor::Bytes;
///
/// let custom = Accelerator::builder("my-accel")
///     .pe(64, 64)
///     .sg(Bytes::from_mib(4))
///     .noc(Noc::Tree)
///     .build();
/// assert_eq!(custom.pe.count(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    /// Human-readable platform name (e.g. `"edge"`).
    pub name: String,
    /// The MAC array.
    pub pe: PeArray,
    /// Capacity of each PE's local scratchpad (SL).
    pub sl_per_pe: Bytes,
    /// Capacity of the shared global scratchpad (SG).
    pub sg: Bytes,
    /// Distribution/reduction network.
    pub noc: Noc,
    /// Softmax / non-linearity unit.
    pub sfu: Sfu,
    /// On-chip and off-chip bandwidths.
    pub mem: MemorySystem,
    /// Clock frequency in hertz.
    pub clock_hz: f64,
    /// Per-action energy table.
    pub energy: EnergyTable,
    /// Optional second-level on-chip buffer between the SG and DRAM
    /// (§3.1's multi-level hierarchy). `None` for the paper's single-level
    /// presets.
    pub l2_sram: Option<crate::L2Sram>,
}

impl Accelerator {
    /// The edge platform of Figure 7(a): 32×32 PEs, 512 KiB SG, 1 TB/s
    /// on-chip, 50 GB/s off-chip, 1 GHz.
    #[must_use]
    pub fn edge() -> Self {
        Accelerator {
            name: "edge".to_owned(),
            pe: PeArray::new(32, 32),
            sl_per_pe: Bytes::from_kib(1),
            sg: Bytes::from_kib(512),
            noc: Noc::Systolic,
            // §6.1: the SFU "has enough FLOPs to not bottleneck the
            // compute flow for all variants" — 256 elem/cycle keeps the
            // sequential baseline's whole-tensor softmax pass well under
            // its GEMM time on a 1024-MAC array.
            sfu: Sfu::new(256, 16),
            mem: MemorySystem::new(1.0e12, 50.0e9),
            clock_hz: 1.0e9,
            energy: EnergyTable::default_16bit(),
            l2_sram: None,
        }
    }

    /// The cloud platform of Figure 7(a): 256×256 PEs, 32 MiB SG, 8 TB/s
    /// on-chip, 400 GB/s off-chip, 1 GHz.
    #[must_use]
    pub fn cloud() -> Self {
        Accelerator {
            name: "cloud".to_owned(),
            pe: PeArray::new(256, 256),
            sl_per_pe: Bytes::from_kib(1),
            sg: Bytes::from_mib(32),
            noc: Noc::Systolic,
            sfu: Sfu::new(8192, 16),
            mem: MemorySystem::new(8.0e12, 400.0e9),
            clock_hz: 1.0e9,
            energy: EnergyTable::default_16bit(),
            l2_sram: None,
        }
    }

    /// Starts building a custom accelerator; unspecified fields default to
    /// the edge preset's values.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> AcceleratorBuilder {
        AcceleratorBuilder {
            inner: Accelerator {
                name: name.into(),
                ..Accelerator::edge()
            },
        }
    }

    /// Peak compute throughput in FLOP/s (2 FLOPs per MAC per PE per cycle).
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.pe.count() as f64 * self.clock_hz
    }

    /// Peak MAC throughput per cycle.
    #[must_use]
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.pe.macs_per_cycle()
    }

    /// On-chip bandwidth, bytes per cycle.
    #[must_use]
    pub fn onchip_bytes_per_cycle(&self) -> f64 {
        self.mem.onchip_bytes_per_cycle(self.clock_hz)
    }

    /// Off-chip bandwidth, bytes per cycle.
    #[must_use]
    pub fn offchip_bytes_per_cycle(&self) -> f64 {
        self.mem.offchip_bytes_per_cycle(self.clock_hz)
    }

    /// Total PE-local scratchpad capacity across the array.
    #[must_use]
    pub fn total_sl(&self) -> Bytes {
        self.sl_per_pe * self.pe.count()
    }

    /// Returns a copy with a different SG capacity (used by the Figure 8/9
    /// buffer sweeps).
    #[must_use]
    pub fn with_sg(&self, sg: Bytes) -> Self {
        let mut a = self.clone();
        a.sg = sg;
        a
    }

    /// Returns a copy with a different off-chip bandwidth (used by the
    /// Figure 12(b) bandwidth-requirement search).
    #[must_use]
    pub fn with_offchip_bw(&self, bytes_per_s: f64) -> Self {
        let mut a = self.clone();
        a.mem = a.mem.with_offchip(bytes_per_s);
        a
    }

    /// Converts a cycle count to seconds at this accelerator's clock.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }

    /// Modeled capacity of the off-chip DRAM level.
    ///
    /// The paper characterizes off-chip memory by bandwidth only (§5.3.1);
    /// serving additionally needs a *capacity* to budget the KV-cache
    /// against. The convention follows the bandwidth class: HBM-grade
    /// interfaces (≥ 200 GB/s, the cloud preset) ship as multi-stack
    /// 32 GiB parts, LPDDR-grade edge interfaces as 4 GiB.
    #[must_use]
    pub fn dram_capacity(&self) -> Bytes {
        if self.mem.offchip_bytes_per_s >= 200.0e9 {
            Bytes::from_gib(32)
        } else {
            Bytes::from_gib(4)
        }
    }
}

impl fmt::Display for Accelerator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}, SG {}, {} NoC, {}, {:.1} GHz",
            self.name,
            self.pe,
            self.sg,
            self.noc,
            self.mem,
            self.clock_hz / 1e9
        )
    }
}

/// Builder for custom [`Accelerator`] configurations.
///
/// Every setter returns `self`, so configuration chains fluently; defaults
/// come from [`Accelerator::edge`].
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    inner: Accelerator,
}

impl AcceleratorBuilder {
    /// Sets the PE array shape.
    #[must_use]
    pub fn pe(mut self, rows: u64, cols: u64) -> Self {
        self.inner.pe = PeArray::new(rows, cols);
        self
    }

    /// Sets the global scratchpad capacity.
    #[must_use]
    pub fn sg(mut self, sg: Bytes) -> Self {
        self.inner.sg = sg;
        self
    }

    /// Sets the per-PE local scratchpad capacity.
    #[must_use]
    pub fn sl_per_pe(mut self, sl: Bytes) -> Self {
        self.inner.sl_per_pe = sl;
        self
    }

    /// Sets the NoC fabric.
    #[must_use]
    pub fn noc(mut self, noc: Noc) -> Self {
        self.inner.noc = noc;
        self
    }

    /// Sets the SFU configuration.
    #[must_use]
    pub fn sfu(mut self, sfu: Sfu) -> Self {
        self.inner.sfu = sfu;
        self
    }

    /// Sets the memory bandwidths.
    #[must_use]
    pub fn memory(mut self, mem: MemorySystem) -> Self {
        self.inner.mem = mem;
        self
    }

    /// Sets the clock frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not strictly positive and finite.
    #[must_use]
    pub fn clock_hz(mut self, clock_hz: f64) -> Self {
        assert!(
            clock_hz > 0.0 && clock_hz.is_finite(),
            "clock must be positive"
        );
        self.inner.clock_hz = clock_hz;
        self
    }

    /// Sets the energy table.
    #[must_use]
    pub fn energy(mut self, energy: EnergyTable) -> Self {
        self.inner.energy = energy;
        self
    }

    /// Adds a second-level on-chip buffer (§3.1 multi-level hierarchy).
    #[must_use]
    pub fn l2_sram(mut self, l2: crate::L2Sram) -> Self {
        self.inner.l2_sram = Some(l2);
        self
    }

    /// Finalizes the accelerator.
    #[must_use]
    pub fn build(self) -> Accelerator {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_preset_matches_figure_7a() {
        let e = Accelerator::edge();
        assert_eq!(e.pe, PeArray::new(32, 32));
        assert_eq!(e.sg, Bytes::from_kib(512));
        assert_eq!(e.mem.onchip_bytes_per_s, 1.0e12);
        assert_eq!(e.mem.offchip_bytes_per_s, 50.0e9);
        assert_eq!(e.clock_hz, 1.0e9);
    }

    #[test]
    fn cloud_preset_matches_figure_7a() {
        let c = Accelerator::cloud();
        assert_eq!(c.pe, PeArray::new(256, 256));
        assert_eq!(c.sg, Bytes::from_mib(32));
        assert_eq!(c.mem.onchip_bytes_per_s, 8.0e12);
        assert_eq!(c.mem.offchip_bytes_per_s, 400.0e9);
    }

    #[test]
    fn peak_flops_is_2x_macs() {
        let e = Accelerator::edge();
        assert_eq!(e.peak_flops(), 2.0 * 1024.0 * 1.0e9);
    }

    #[test]
    fn builder_overrides_selected_fields() {
        let a = Accelerator::builder("x")
            .pe(8, 16)
            .sg(Bytes::from_mib(1))
            .noc(Noc::Crossbar)
            .clock_hz(2.0e9)
            .build();
        assert_eq!(a.pe.count(), 128);
        assert_eq!(a.sg, Bytes::from_mib(1));
        assert_eq!(a.noc, Noc::Crossbar);
        // Unspecified fields come from the edge preset.
        assert_eq!(a.mem.offchip_bytes_per_s, 50.0e9);
    }

    #[test]
    fn sweep_helpers_replace_one_knob() {
        let e = Accelerator::edge();
        assert_eq!(e.with_sg(Bytes::from_mib(2)).sg, Bytes::from_mib(2));
        assert_eq!(e.with_offchip_bw(1e11).mem.offchip_bytes_per_s, 1e11);
        assert_eq!(e.with_sg(Bytes::from_mib(2)).pe, e.pe);
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let e = Accelerator::edge();
        assert!((e.cycles_to_seconds(1.0e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dram_capacity_follows_bandwidth_class() {
        assert_eq!(Accelerator::edge().dram_capacity(), Bytes::from_gib(4));
        assert_eq!(Accelerator::cloud().dram_capacity(), Bytes::from_gib(32));
        let hbm_edge = Accelerator::edge().with_offchip_bw(400.0e9);
        assert_eq!(hbm_edge.dram_capacity(), Bytes::from_gib(32));
    }
}
