//! Optional second-level on-chip buffer (§3.1: "our ideas are applicable
//! to a multi-level on-chip memory hierarchy as well").

use flat_tensor::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A capacity tier between the global scratchpad and DRAM: larger and
/// cheaper per byte than the SG, slower than it, far faster than going
/// off-chip (an eDRAM block, a chiplet-level SRAM, or an on-package
/// cache).
///
/// FLAT-tiles that overflow the SG can stage here instead of spilling to
/// DRAM — which is how a multi-level hierarchy extends the sequence-length
/// reach of a given SG budget.
///
/// # Example
///
/// ```
/// use flat_arch::L2Sram;
/// use flat_tensor::Bytes;
///
/// let l2 = L2Sram::new(Bytes::from_mib(8), 400.0e9);
/// assert_eq!(l2.bytes_per_cycle(1.0e9), 400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L2Sram {
    /// Capacity of the level.
    pub capacity: Bytes,
    /// Bandwidth between this level and the SG, bytes per second.
    pub bytes_per_s: f64,
}

impl L2Sram {
    /// Creates a second-level buffer.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive and finite.
    #[must_use]
    pub fn new(capacity: Bytes, bytes_per_s: f64) -> Self {
        assert!(
            bytes_per_s > 0.0 && bytes_per_s.is_finite(),
            "L2 bandwidth must be positive"
        );
        L2Sram {
            capacity,
            bytes_per_s,
        }
    }

    /// Bandwidth in bytes per cycle at `clock_hz`.
    #[must_use]
    pub fn bytes_per_cycle(&self, clock_hz: f64) -> f64 {
        self.bytes_per_s / clock_hz
    }

    /// Bandwidth in *elements* of `dtype` per second (narrower storage
    /// moves proportionally more elements through the same wires).
    #[must_use]
    pub fn elements_per_s(&self, dtype: flat_tensor::DataType) -> f64 {
        self.bytes_per_s / dtype.size_bytes() as f64
    }

    /// How many elements of `dtype` the level holds.
    #[must_use]
    pub fn capacity_elements(&self, dtype: flat_tensor::DataType) -> u64 {
        self.capacity.as_u64() / dtype.size_bytes()
    }
}

impl fmt::Display for L2Sram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L2 {} at {:.0} GB/s",
            self.capacity,
            self.bytes_per_s / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_conversion() {
        let l2 = L2Sram::new(Bytes::from_mib(8), 200.0e9);
        assert!((l2.bytes_per_cycle(1.0e9) - 200.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = L2Sram::new(Bytes::from_mib(1), 0.0);
    }
}
