//! The two-level memory system: on-chip scratchpad port vs. off-chip DRAM.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bandwidths of the shared memory interfaces.
///
/// §5.3.1: *"we model the on-chip and off-chip memory as a limited shared HW
/// resource"* — every agent (PE array reads/writes, SFU, double-buffer
/// prefetch) draws from these two pools. The paper's entire argument hinges
/// on the gap: the edge preset has 20× more on-chip than off-chip bandwidth
/// (1 TB/s vs 50 GB/s) and FLAT's job is to move the quadratic logit-tensor
/// traffic from the slow pool to the fast pool.
///
/// # Example
///
/// ```
/// use flat_arch::MemorySystem;
///
/// let edge = MemorySystem::new(1.0e12, 50.0e9);
/// assert_eq!(edge.onchip_bytes_per_cycle(1.0e9), 1000.0);
/// assert_eq!(edge.offchip_bytes_per_cycle(1.0e9), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// On-chip (SG ↔ PE array / SFU) bandwidth, bytes per second.
    pub onchip_bytes_per_s: f64,
    /// Off-chip (DRAM/HBM ↔ SG) bandwidth, bytes per second.
    pub offchip_bytes_per_s: f64,
}

impl MemorySystem {
    /// Creates a memory system from the two aggregate bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not strictly positive and finite.
    #[must_use]
    pub fn new(onchip_bytes_per_s: f64, offchip_bytes_per_s: f64) -> Self {
        assert!(
            onchip_bytes_per_s > 0.0 && onchip_bytes_per_s.is_finite(),
            "on-chip bandwidth must be positive"
        );
        assert!(
            offchip_bytes_per_s > 0.0 && offchip_bytes_per_s.is_finite(),
            "off-chip bandwidth must be positive"
        );
        MemorySystem {
            onchip_bytes_per_s,
            offchip_bytes_per_s,
        }
    }

    /// On-chip bandwidth in bytes per clock cycle at `clock_hz`.
    #[must_use]
    pub fn onchip_bytes_per_cycle(&self, clock_hz: f64) -> f64 {
        self.onchip_bytes_per_s / clock_hz
    }

    /// Off-chip bandwidth in bytes per clock cycle at `clock_hz`.
    #[must_use]
    pub fn offchip_bytes_per_cycle(&self, clock_hz: f64) -> f64 {
        self.offchip_bytes_per_s / clock_hz
    }

    /// On-chip bandwidth in *elements* of `dtype` per second — the
    /// element-width lever of mixed precision: halving the storage width
    /// doubles the elements each interface moves per second.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::MemorySystem;
    /// use flat_tensor::DataType;
    ///
    /// let m = MemorySystem::new(1.0e12, 50.0e9);
    /// assert_eq!(m.onchip_elements_per_s(DataType::Bf16),
    ///            2.0 * m.onchip_elements_per_s(DataType::Fp32));
    /// ```
    #[must_use]
    pub fn onchip_elements_per_s(&self, dtype: flat_tensor::DataType) -> f64 {
        self.onchip_bytes_per_s / dtype.size_bytes() as f64
    }

    /// Off-chip bandwidth in *elements* of `dtype` per second.
    #[must_use]
    pub fn offchip_elements_per_s(&self, dtype: flat_tensor::DataType) -> f64 {
        self.offchip_bytes_per_s / dtype.size_bytes() as f64
    }

    /// Ratio of on-chip to off-chip bandwidth — the "roofline lift" staging
    /// data on-chip buys (Figure 2(c)).
    #[must_use]
    pub fn bandwidth_ratio(&self) -> f64 {
        self.onchip_bytes_per_s / self.offchip_bytes_per_s
    }

    /// Returns a copy with a different off-chip bandwidth (used by the
    /// Figure 12(b) bandwidth-requirement search).
    #[must_use]
    pub fn with_offchip(&self, offchip_bytes_per_s: f64) -> Self {
        MemorySystem::new(self.onchip_bytes_per_s, offchip_bytes_per_s)
    }
}

impl fmt::Display for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "on-chip {:.0} GB/s, off-chip {:.0} GB/s",
            self.onchip_bytes_per_s / 1e9,
            self.offchip_bytes_per_s / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_conversion() {
        let m = MemorySystem::new(8.0e12, 400.0e9);
        assert!((m.onchip_bytes_per_cycle(1.0e9) - 8000.0).abs() < 1e-9);
        assert!((m.offchip_bytes_per_cycle(1.0e9) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_matches_presets() {
        let edge = MemorySystem::new(1.0e12, 50.0e9);
        assert!((edge.bandwidth_ratio() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bw_rejected() {
        let _ = MemorySystem::new(0.0, 1.0);
    }

    #[test]
    fn with_offchip_replaces_only_offchip() {
        let m = MemorySystem::new(1.0e12, 50.0e9).with_offchip(100.0e9);
        assert_eq!(m.onchip_bytes_per_s, 1.0e12);
        assert_eq!(m.offchip_bytes_per_s, 100.0e9);
    }
}
