//! Silicon area model — the resource the conclusion (§8) says FLAT
//! re-balances: *"designers can now budget a much smaller on-chip buffer.
//! FLAT changes how available area (energy) is provisioned and balanced
//! across compute/memory."*

use crate::Accelerator;
use serde::{Deserialize, Serialize};

/// Per-component silicon costs, in mm² (28 nm-class values; only the
/// PE-vs-SRAM *ratio* matters to the provisioning study).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One PE: a 16-bit MAC plus its local scratchpad and control.
    pub pe_mm2: f64,
    /// One KiB of global-scratchpad SRAM (incl. periphery).
    pub sram_mm2_per_kib: f64,
    /// One SFU lane (element/cycle of softmax throughput).
    pub sfu_mm2_per_lane: f64,
    /// Wiring/NoC overhead as a fraction of the PE-array area.
    pub noc_fraction: f64,
}

impl AreaModel {
    /// Default 28 nm-class figures.
    #[must_use]
    pub const fn default_28nm() -> Self {
        AreaModel {
            pe_mm2: 0.0025,
            sram_mm2_per_kib: 0.0015,
            sfu_mm2_per_lane: 0.001,
            noc_fraction: 0.10,
        }
    }

    /// Total die area of an accelerator under this model.
    #[must_use]
    pub fn area_mm2(&self, accel: &Accelerator) -> f64 {
        let pes = accel.pe.count() as f64 * self.pe_mm2 * (1.0 + self.noc_fraction);
        let sram = accel.sg.as_kib() * self.sram_mm2_per_kib;
        let sfu = accel.sfu.elements_per_cycle as f64 * self.sfu_mm2_per_lane;
        pes + sram + sfu
    }

    /// Largest square PE array affordable after spending `sram_kib` of a
    /// `budget_mm2` die on the scratchpad (and a matching SFU). Returns
    /// `None` when the scratchpad alone exceeds the budget.
    #[must_use]
    pub fn pe_dim_for_budget(&self, budget_mm2: f64, sram_kib: f64, sfu_lanes: u64) -> Option<u64> {
        let left = budget_mm2
            - sram_kib * self.sram_mm2_per_kib
            - sfu_lanes as f64 * self.sfu_mm2_per_lane;
        if left <= 0.0 {
            return None;
        }
        let pes = left / (self.pe_mm2 * (1.0 + self.noc_fraction));
        // The epsilon absorbs float fuzz on exact divisions (an exactly
        // affordable square array must not round down).
        let dim = (pes.sqrt() + 1e-9).floor() as u64;
        if dim == 0 {
            None
        } else {
            Some(dim)
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::default_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_areas_are_plausible() {
        let m = AreaModel::default_28nm();
        let edge = m.area_mm2(&Accelerator::edge());
        let cloud = m.area_mm2(&Accelerator::cloud());
        // Edge: a few mm²; cloud: a large die — both in realistic ranges.
        assert!((1.0..20.0).contains(&edge), "edge {edge} mm2");
        assert!((100.0..600.0).contains(&cloud), "cloud {cloud} mm2");
        assert!(cloud > 20.0 * edge);
    }

    #[test]
    fn budget_split_trades_pes_for_sram() {
        let m = AreaModel::default_28nm();
        let small_sram = m.pe_dim_for_budget(4.0, 128.0, 256).unwrap();
        let big_sram = m.pe_dim_for_budget(4.0, 1024.0, 256).unwrap();
        assert!(small_sram > big_sram);
    }

    #[test]
    fn overcommitted_sram_returns_none() {
        let m = AreaModel::default_28nm();
        assert!(m.pe_dim_for_budget(1.0, 10_000.0, 128).is_none());
    }

    #[test]
    fn area_is_monotone_in_everything() {
        let m = AreaModel::default_28nm();
        let base = Accelerator::edge();
        let more_pes = Accelerator::builder("x").pe(64, 64).build();
        let more_sram = base.with_sg(flat_tensor::Bytes::from_mib(8));
        assert!(m.area_mm2(&more_pes) > m.area_mm2(&base));
        assert!(m.area_mm2(&more_sram) > m.area_mm2(&base));
    }
}
