//! The special-function unit that computes softmax (and other
//! non-linearities) between operators.

use flat_tensor::SoftmaxKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Special-function unit (SFU).
///
/// In the ATTACC architecture (Figure 5) the SFU sits next to the PE array
/// and applies softmax to each completed FLAT-tile of logits before the
/// Attend stage consumes it. §5.3.1: *"We also account for the runtime for
/// SoftMax as it comes between the L and A operators and in our critical
/// path."* The evaluation sizes the SFU "to not bottleneck the compute flow"
/// — the presets here follow that rule — but the latency is still charged.
///
/// # Example
///
/// ```
/// use flat_arch::Sfu;
///
/// let sfu = Sfu::new(128, 16);
/// // softmax over a [4, 512] slice = 2048 elements
/// assert_eq!(sfu.softmax_cycles(2048), 2048 / 128 + 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sfu {
    /// Elements processed per cycle once the pipeline is full.
    pub elements_per_cycle: u64,
    /// Pipeline fill latency in cycles (exp/normalize stages).
    pub pipeline_latency: u64,
}

impl Sfu {
    /// Creates an SFU with the given throughput and pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `elements_per_cycle` is zero.
    #[must_use]
    pub fn new(elements_per_cycle: u64, pipeline_latency: u64) -> Self {
        assert!(elements_per_cycle > 0, "SFU throughput must be positive");
        Sfu {
            elements_per_cycle,
            pipeline_latency,
        }
    }

    /// Cycles to apply softmax to `elements` logit values.
    ///
    /// Softmax is a two-pass row operation (max+exp+sum, then scale), but a
    /// pipelined online implementation streams at `elements_per_cycle`; the
    /// second pass is folded into the pipeline depth.
    #[must_use]
    pub fn softmax_cycles(&self, elements: u64) -> u64 {
        if elements == 0 {
            return 0;
        }
        elements.div_ceil(self.elements_per_cycle) + self.pipeline_latency
    }

    /// Pipeline beats per element each softmax family member occupies:
    /// the exact two-pass needs max + exp + divide stages (3), FLASH-D
    /// folds the divide into the accumulate (2), and the log-LUT variant
    /// is a single compare-add-lookup pass (1).
    #[must_use]
    pub const fn beats_per_element(kind: SoftmaxKind) -> u64 {
        match kind {
            SoftmaxKind::Exact => 3,
            SoftmaxKind::FlashD => 2,
            SoftmaxKind::LogLut => 1,
        }
    }

    /// Cycles to apply the selected softmax family member to `elements`
    /// logits. Throughput scales with how many pipeline beats each
    /// element needs, normalized so [`SoftmaxKind::Exact`] reproduces
    /// [`softmax_cycles`](Self::softmax_cycles) exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use flat_arch::Sfu;
    /// use flat_tensor::SoftmaxKind;
    ///
    /// let sfu = Sfu::new(128, 16);
    /// assert_eq!(sfu.softmax_cycles_kind(2048, SoftmaxKind::Exact),
    ///            sfu.softmax_cycles(2048));
    /// // The log-LUT member streams 3x the elements per cycle.
    /// assert!(sfu.softmax_cycles_kind(6144, SoftmaxKind::LogLut)
    ///         <= sfu.softmax_cycles(2048));
    /// ```
    #[must_use]
    pub fn softmax_cycles_kind(&self, elements: u64, kind: SoftmaxKind) -> u64 {
        if elements == 0 {
            return 0;
        }
        let beats = Self::beats_per_element(kind);
        (elements * beats).div_ceil(3 * self.elements_per_cycle) + self.pipeline_latency
    }
}

impl fmt::Display for Sfu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SFU {} elem/cycle (+{} fill)",
            self.elements_per_cycle, self.pipeline_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_elements_is_free() {
        assert_eq!(Sfu::new(64, 8).softmax_cycles(0), 0);
    }

    #[test]
    fn throughput_dominates_large_slices() {
        let sfu = Sfu::new(128, 16);
        let big = sfu.softmax_cycles(1 << 20);
        assert!(big >= (1 << 20) / 128);
        assert!(big <= (1 << 20) / 128 + 17);
    }

    #[test]
    fn partial_beat_rounds_up() {
        assert_eq!(Sfu::new(100, 0).softmax_cycles(101), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_rejected() {
        let _ = Sfu::new(0, 1);
    }

    #[test]
    fn exact_kind_reproduces_legacy_formula() {
        let sfu = Sfu::new(128, 16);
        for n in [0u64, 1, 127, 128, 2048, 1 << 20] {
            assert_eq!(
                sfu.softmax_cycles_kind(n, SoftmaxKind::Exact),
                sfu.softmax_cycles(n),
                "{n}"
            );
        }
    }

    #[test]
    fn cheaper_kinds_never_cost_more() {
        let sfu = Sfu::new(64, 8);
        for n in [0u64, 1, 100, 10_000] {
            let exact = sfu.softmax_cycles_kind(n, SoftmaxKind::Exact);
            let flash = sfu.softmax_cycles_kind(n, SoftmaxKind::FlashD);
            let lut = sfu.softmax_cycles_kind(n, SoftmaxKind::LogLut);
            assert!(flash <= exact, "{n}");
            assert!(lut <= flash, "{n}");
        }
        // At scale the ratios approach the beat counts.
        let n = 3 * 64 * 1_000_000;
        let exact = sfu.softmax_cycles_kind(n, SoftmaxKind::Exact) as f64;
        let lut = sfu.softmax_cycles_kind(n, SoftmaxKind::LogLut) as f64;
        assert!((exact / lut - 3.0).abs() < 0.01);
    }
}
