//! The processing-element array.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular array of processing elements, each a MAC unit plus a local
/// scratchpad (SL).
///
/// The array shape matters beyond its product: the systolic fill/drain
/// latency of a tile switch scales with `rows + cols`, and a GEMM tile that
/// does not cover the full array leaves PEs idle (edge effects the compute
/// model charges explicitly).
///
/// # Example
///
/// ```
/// use flat_arch::PeArray;
///
/// let pe = PeArray::new(32, 32);
/// assert_eq!(pe.count(), 1024);
/// assert_eq!(pe.macs_per_cycle(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeArray {
    /// Rows of PEs.
    pub rows: u64,
    /// Columns of PEs.
    pub cols: u64,
}

impl PeArray {
    /// Creates a `rows × cols` PE array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: u64, cols: u64) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "PE array must be non-empty: {rows}x{cols}"
        );
        PeArray { rows, cols }
    }

    /// Total number of PEs.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.rows * self.cols
    }

    /// Peak MAC throughput per cycle (one MAC per PE per cycle).
    #[must_use]
    pub const fn macs_per_cycle(&self) -> u64 {
        self.count()
    }

    /// Longer side of the array (used by distribution-latency bounds).
    #[must_use]
    pub fn max_dim(&self) -> u64 {
        self.rows.max(self.cols)
    }
}

impl fmt::Display for PeArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} PEs", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_product() {
        assert_eq!(PeArray::new(32, 32).count(), 1024);
        assert_eq!(PeArray::new(256, 256).count(), 65536);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dim_rejected() {
        let _ = PeArray::new(0, 8);
    }

    #[test]
    fn display_mentions_shape() {
        assert_eq!(PeArray::new(4, 8).to_string(), "4x8 PEs");
    }
}
