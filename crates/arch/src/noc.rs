//! Distribution and reduction network-on-chip models.

use crate::PeArray;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The on-chip network used to distribute operands into the PE array and
/// collect (reduce) outputs from it.
///
/// §5.3.1: *"We also model different choices for data distribution and
/// reduction NoCs (systolic, tree, crossbar) which trade-off bandwidth and
/// distribution/collection time."* The cost model charges the chosen NoC's
/// fill and drain latency on **every tile switch** — the paper's "cold start
/// and tailing effect". A systolic fabric (TPU-style) is cheap in area but
/// pays `O(rows + cols)` cycles per switch; a tree (MAERI-style) pays
/// `O(log)` levels; a crossbar approaches `O(1)` at much higher wiring cost.
///
/// # Example
///
/// ```
/// use flat_arch::{Noc, PeArray};
///
/// let pe = PeArray::new(32, 32);
/// assert!(Noc::Systolic.fill_latency(pe) > Noc::Tree.fill_latency(pe));
/// assert!(Noc::Tree.fill_latency(pe) > Noc::Crossbar.fill_latency(pe));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Noc {
    /// Store-and-forward mesh: operands ripple across the array
    /// (TPU-style). Fill/drain latency grows with the array perimeter.
    Systolic,
    /// Fat-tree distribution/reduction (MAERI-style): logarithmic latency.
    Tree,
    /// Fully connected crossbar: near-constant latency.
    Crossbar,
}

impl Noc {
    /// Cycles to fill the array with a fresh stationary tile.
    #[must_use]
    pub fn fill_latency(self, pe: PeArray) -> u64 {
        match self {
            Noc::Systolic => pe.rows + pe.cols,
            Noc::Tree => 2 * ceil_log2(pe.max_dim()),
            Noc::Crossbar => 2,
        }
    }

    /// Cycles to drain the last outputs after a tile finishes.
    ///
    /// Symmetric with [`Noc::fill_latency`]: the reduction path mirrors the
    /// distribution path in all three fabrics.
    #[must_use]
    pub fn drain_latency(self, pe: PeArray) -> u64 {
        self.fill_latency(pe)
    }

    /// Total dead cycles charged per tile switch.
    #[must_use]
    pub fn tile_switch_overhead(self, pe: PeArray) -> u64 {
        self.fill_latency(pe) + self.drain_latency(pe)
    }

    /// All NoC variants, for sweeps.
    #[must_use]
    pub const fn all() -> [Noc; 3] {
        [Noc::Systolic, Noc::Tree, Noc::Crossbar]
    }
}

impl fmt::Display for Noc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Noc::Systolic => "systolic",
            Noc::Tree => "tree",
            Noc::Crossbar => "crossbar",
        };
        f.write_str(name)
    }
}

/// Ceiling of log2, with `ceil_log2(1) == 1` (a single level still costs a
/// cycle of traversal).
fn ceil_log2(x: u64) -> u64 {
    debug_assert!(x > 0);
    u64::from(64 - (x - 1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_scales_with_perimeter() {
        let small = PeArray::new(8, 8);
        let big = PeArray::new(256, 256);
        assert_eq!(Noc::Systolic.fill_latency(small), 16);
        assert_eq!(Noc::Systolic.fill_latency(big), 512);
    }

    #[test]
    fn tree_is_logarithmic() {
        assert_eq!(Noc::Tree.fill_latency(PeArray::new(256, 256)), 16);
        assert_eq!(Noc::Tree.fill_latency(PeArray::new(32, 32)), 10);
    }

    #[test]
    fn crossbar_is_constant() {
        assert_eq!(
            Noc::Crossbar.fill_latency(PeArray::new(8, 8)),
            Noc::Crossbar.fill_latency(PeArray::new(512, 512)),
        );
    }

    #[test]
    fn switch_overhead_is_fill_plus_drain() {
        let pe = PeArray::new(32, 32);
        for noc in Noc::all() {
            assert_eq!(
                noc.tile_switch_overhead(pe),
                noc.fill_latency(pe) + noc.drain_latency(pe)
            );
        }
    }

    /// The doc example's ordering, promoted to a test over both the
    /// distribution (fill) and reduction (drain) paths: a systolic mesh
    /// costs more than a tree, which costs more than a crossbar, on
    /// every array the presets use.
    #[test]
    fn drain_ordering_matches_fill_ordering_on_all_variants() {
        for pe in [
            PeArray::new(8, 8),
            PeArray::new(32, 32),
            PeArray::new(256, 256),
        ] {
            assert!(Noc::Systolic.drain_latency(pe) > Noc::Tree.drain_latency(pe));
            assert!(Noc::Tree.drain_latency(pe) > Noc::Crossbar.drain_latency(pe));
        }
    }

    /// The reduction path mirrors the distribution path in all three
    /// fabrics — drain is exactly fill, including on asymmetric arrays
    /// where rows and cols differ.
    #[test]
    fn drain_is_symmetric_with_fill_for_every_variant() {
        for pe in [
            PeArray::new(32, 32),
            PeArray::new(8, 128),
            PeArray::new(128, 8),
        ] {
            for noc in Noc::all() {
                assert_eq!(
                    noc.drain_latency(pe),
                    noc.fill_latency(pe),
                    "{noc} on {pe:?}"
                );
            }
        }
    }

    /// Asymmetric arrays: the systolic perimeter sees rows + cols, the
    /// tree only the longest dimension, the crossbar neither.
    #[test]
    fn asymmetric_arrays_separate_the_variants() {
        let (tall, wide) = (PeArray::new(128, 8), PeArray::new(8, 128));
        assert_eq!(Noc::Systolic.drain_latency(tall), 136);
        assert_eq!(
            Noc::Systolic.drain_latency(tall),
            Noc::Systolic.drain_latency(wide)
        );
        assert_eq!(Noc::Tree.drain_latency(tall), 2 * 7);
        assert_eq!(Noc::Crossbar.drain_latency(tall), 2);
    }

    #[test]
    fn ceil_log2_edge_cases() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }
}
