//! Accelergy-style per-action energy accounting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// Per-action energy costs, in picojoules.
///
/// §5.3.2 uses Accelergy to turn activity counts into energy. We substitute
/// a static table whose *ratios* follow the published Eyeriss/Accelergy
/// numbers for a 16-bit datapath: a DRAM access is roughly two orders of
/// magnitude more expensive than a MAC, a global-buffer (SG) access ~6×,
/// and a local-scratchpad (SL/register) access ~1×. The paper's point —
/// *"what \[FLAT\] changes is the number of off-chip accesses (which are
/// orders of magnitude more expensive in energy than on-chip)"* — only
/// needs those ratios.
///
/// # Example
///
/// ```
/// use flat_arch::EnergyTable;
///
/// let e = EnergyTable::default_16bit();
/// assert!(e.dram_pj_per_elem / e.mac_pj > 100.0);
/// assert!(e.sg_pj_per_elem > e.sl_pj_per_elem);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One 16-bit multiply-accumulate.
    pub mac_pj: f64,
    /// One element read/written at a PE-local scratchpad (SL).
    pub sl_pj_per_elem: f64,
    /// One element read/written at the global scratchpad (SG).
    pub sg_pj_per_elem: f64,
    /// One element read/written at DRAM/HBM.
    pub dram_pj_per_elem: f64,
    /// One element through the SFU (exp + scale).
    pub sfu_pj_per_elem: f64,
}

impl EnergyTable {
    /// The default 16-bit table (Eyeriss-derived ratios, 45 nm-class
    /// absolute values).
    #[must_use]
    pub fn default_16bit() -> Self {
        EnergyTable {
            mac_pj: 1.0,
            sl_pj_per_elem: 1.0,
            sg_pj_per_elem: 6.0,
            dram_pj_per_elem: 200.0,
            sfu_pj_per_elem: 4.0,
        }
    }

    /// Rescales the per-action energies for a different element width.
    /// Access energies scale linearly with bits moved; MAC energy scales
    /// linearly with operand width (a first-order model consistent with
    /// the published Accelergy tables).
    #[must_use]
    pub fn scaled_for(&self, dtype: flat_tensor::DataType) -> EnergyTable {
        let s = dtype.size_bytes() as f64 / 2.0; // table is calibrated at 16-bit
        EnergyTable {
            mac_pj: self.mac_pj * s,
            sl_pj_per_elem: self.sl_pj_per_elem * s,
            sg_pj_per_elem: self.sg_pj_per_elem * s,
            dram_pj_per_elem: self.dram_pj_per_elem * s,
            sfu_pj_per_elem: self.sfu_pj_per_elem * s,
        }
    }

    /// Rescales the SFU per-element energy for a softmax family member:
    /// the exact two-pass (max + exp + divide) is the calibration point,
    /// FLASH-D drops the divider (2/3), and the log-LUT variant replaces
    /// the exp unit with a compare-add-lookup (1/4 — the LUT datapath is
    /// far cheaper than a pipelined exponential).
    #[must_use]
    pub fn scaled_for_softmax(&self, kind: flat_tensor::SoftmaxKind) -> EnergyTable {
        let s = match kind {
            flat_tensor::SoftmaxKind::Exact => 1.0,
            flat_tensor::SoftmaxKind::FlashD => 2.0 / 3.0,
            flat_tensor::SoftmaxKind::LogLut => 0.25,
        };
        EnergyTable {
            sfu_pj_per_elem: self.sfu_pj_per_elem * s,
            ..*self
        }
    }

    /// Converts activity counts into an [`EnergyBreakdown`].
    #[must_use]
    pub fn energy(&self, counts: &ActivityCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: counts.macs as f64 * self.mac_pj,
            sl_pj: counts.sl_accesses as f64 * self.sl_pj_per_elem,
            sg_pj: counts.sg_accesses as f64 * self.sg_pj_per_elem,
            dram_pj: counts.dram_accesses as f64 * self.dram_pj_per_elem,
            sfu_pj: counts.sfu_elements as f64 * self.sfu_pj_per_elem,
        }
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable::default_16bit()
    }
}

/// Raw activity counts produced by the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// Element accesses at PE-local scratchpads.
    pub sl_accesses: u64,
    /// Element accesses at the global scratchpad.
    pub sg_accesses: u64,
    /// Element accesses at DRAM.
    pub dram_accesses: u64,
    /// Elements processed by the SFU.
    pub sfu_elements: u64,
}

impl Add for ActivityCounts {
    type Output = ActivityCounts;
    fn add(self, rhs: ActivityCounts) -> ActivityCounts {
        ActivityCounts {
            macs: self.macs + rhs.macs,
            sl_accesses: self.sl_accesses + rhs.sl_accesses,
            sg_accesses: self.sg_accesses + rhs.sg_accesses,
            dram_accesses: self.dram_accesses + rhs.dram_accesses,
            sfu_elements: self.sfu_elements + rhs.sfu_elements,
        }
    }
}

impl Sum for ActivityCounts {
    fn sum<I: Iterator<Item = ActivityCounts>>(iter: I) -> ActivityCounts {
        iter.fold(ActivityCounts::default(), Add::add)
    }
}

/// Energy split by hardware component, in picojoules.
///
/// # Example
///
/// ```
/// use flat_arch::EnergyBreakdown;
///
/// let e = EnergyBreakdown { compute_pj: 1.0, sl_pj: 1.0, sg_pj: 2.0, dram_pj: 6.0, sfu_pj: 0.0 };
/// assert_eq!(e.total_pj(), 10.0);
/// assert_eq!(e.memory_fraction(), 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC array energy.
    pub compute_pj: f64,
    /// PE-local scratchpad energy.
    pub sl_pj: f64,
    /// Global scratchpad energy.
    pub sg_pj: f64,
    /// DRAM energy.
    pub dram_pj: f64,
    /// SFU energy.
    pub sfu_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sl_pj + self.sg_pj + self.dram_pj + self.sfu_pj
    }

    /// Fraction of total energy spent on data movement (SL + SG + DRAM).
    ///
    /// Returns 0 when total energy is zero.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            (self.sl_pj + self.sg_pj + self.dram_pj) / total
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + rhs.compute_pj,
            sl_pj: self.sl_pj + rhs.sl_pj,
            sg_pj: self.sg_pj + rhs.sg_pj,
            dram_pj: self.dram_pj + rhs.dram_pj,
            sfu_pj: self.sfu_pj + rhs.sfu_pj,
        }
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), Add::add)
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} pJ (compute {:.1e}, SL {:.1e}, SG {:.1e}, DRAM {:.1e}, SFU {:.1e})",
            self.total_pj(),
            self.compute_pj,
            self.sl_pj,
            self.sg_pj,
            self.dram_pj,
            self.sfu_pj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_orders_of_magnitude() {
        let t = EnergyTable::default_16bit();
        assert!(t.dram_pj_per_elem >= 100.0 * t.mac_pj);
        assert!(t.sg_pj_per_elem > t.sl_pj_per_elem);
        assert!(t.dram_pj_per_elem > t.sg_pj_per_elem);
    }

    #[test]
    fn energy_is_linear_in_counts() {
        let t = EnergyTable::default_16bit();
        let c1 = ActivityCounts {
            macs: 10,
            sl_accesses: 5,
            sg_accesses: 3,
            dram_accesses: 2,
            sfu_elements: 1,
        };
        let c2 = c1 + c1;
        let e1 = t.energy(&c1);
        let e2 = t.energy(&c2);
        assert!((e2.total_pj() - 2.0 * e1.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums() {
        let a = EnergyBreakdown {
            compute_pj: 1.0,
            sl_pj: 2.0,
            sg_pj: 3.0,
            dram_pj: 4.0,
            sfu_pj: 5.0,
        };
        let b = a + a;
        assert_eq!(b.total_pj(), 30.0);
        let s: EnergyBreakdown = [a, a, a].into_iter().sum();
        assert_eq!(s.total_pj(), 45.0);
    }

    #[test]
    fn memory_fraction_of_zero_energy_is_zero() {
        assert_eq!(EnergyBreakdown::default().memory_fraction(), 0.0);
    }

    #[test]
    fn softmax_scaling_touches_only_the_sfu() {
        let t = EnergyTable::default_16bit();
        let exact = t.scaled_for_softmax(flat_tensor::SoftmaxKind::Exact);
        assert_eq!(exact, t);
        let flash = t.scaled_for_softmax(flat_tensor::SoftmaxKind::FlashD);
        let lut = t.scaled_for_softmax(flat_tensor::SoftmaxKind::LogLut);
        assert!(lut.sfu_pj_per_elem < flash.sfu_pj_per_elem);
        assert!(flash.sfu_pj_per_elem < t.sfu_pj_per_elem);
        for v in [flash, lut] {
            assert_eq!(v.mac_pj, t.mac_pj);
            assert_eq!(v.dram_pj_per_elem, t.dram_pj_per_elem);
            assert_eq!(v.sg_pj_per_elem, t.sg_pj_per_elem);
            assert_eq!(v.sl_pj_per_elem, t.sl_pj_per_elem);
        }
    }
}
