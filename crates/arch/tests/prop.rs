//! Property tests for the hardware substrate.

use flat_arch::{Accelerator, AreaModel, EnergyTable, L2Sram, MemorySystem, Noc, PeArray, Sfu};
use flat_tensor::{Bytes, DataType};
use proptest::prelude::*;

proptest! {
    /// NoC fill latencies order systolic ≥ tree ≥ crossbar for every array
    /// shape, and all are positive.
    #[test]
    fn noc_latency_ordering(rows in 1u64..1024, cols in 1u64..1024) {
        let pe = PeArray::new(rows, cols);
        let sy = Noc::Systolic.fill_latency(pe);
        let tr = Noc::Tree.fill_latency(pe);
        let xb = Noc::Crossbar.fill_latency(pe);
        prop_assert!(sy >= tr || pe.max_dim() <= 4, "systolic {sy} < tree {tr}");
        prop_assert!(tr >= xb);
        prop_assert!(xb > 0);
        for noc in Noc::all() {
            prop_assert_eq!(
                noc.tile_switch_overhead(pe),
                noc.fill_latency(pe) + noc.drain_latency(pe)
            );
        }
    }

    /// Energy is linear: scaling all counts by k scales the bill by k.
    #[test]
    fn energy_linearity(
        macs in 0u64..1_000_000,
        sl in 0u64..1_000_000,
        sg in 0u64..1_000_000,
        dram in 0u64..1_000_000,
        sfu in 0u64..1_000_000,
        k in 1u64..16,
    ) {
        let t = EnergyTable::default_16bit();
        let c = flat_arch::ActivityCounts {
            macs, sl_accesses: sl, sg_accesses: sg, dram_accesses: dram, sfu_elements: sfu,
        };
        let ck = flat_arch::ActivityCounts {
            macs: macs * k,
            sl_accesses: sl * k,
            sg_accesses: sg * k,
            dram_accesses: dram * k,
            sfu_elements: sfu * k,
        };
        let e1 = t.energy(&c).total_pj();
        let ek = t.energy(&ck).total_pj();
        prop_assert!((ek - k as f64 * e1).abs() <= 1e-6 * ek.max(1.0));
    }

    /// Precision scaling of the energy table is monotone in width and
    /// exact at the calibration point.
    #[test]
    fn energy_scales_with_width(macs in 1u64..1_000_000) {
        let t = EnergyTable::default_16bit();
        let c = flat_arch::ActivityCounts { macs, ..Default::default() };
        let fp16 = t.scaled_for(DataType::Fp16).energy(&c).total_pj();
        let int8 = t.scaled_for(DataType::Int8).energy(&c).total_pj();
        let fp32 = t.scaled_for(DataType::Fp32).energy(&c).total_pj();
        prop_assert!((fp16 - t.energy(&c).total_pj()).abs() < 1e-9);
        prop_assert!((int8 * 2.0 - fp16).abs() < 1e-6 * fp16);
        prop_assert!((fp32 - 2.0 * fp16).abs() < 1e-6 * fp32);
    }

    /// Area is strictly monotone in PEs and SRAM, and the budget solver is
    /// consistent with the area function.
    #[test]
    fn area_budget_consistency(sg_kib in 16u64..4096, budget_milli in 500u64..20_000) {
        let m = AreaModel::default_28nm();
        let budget = budget_milli as f64 / 1000.0;
        if let Some(dim) = m.pe_dim_for_budget(budget, sg_kib as f64, 256) {
            let accel = Accelerator::builder("p")
                .pe(dim, dim)
                .sg(Bytes::from_kib(sg_kib))
                .sfu(Sfu::new(256, 16))
                .build();
            prop_assert!(m.area_mm2(&accel) <= budget + 1e-9);
            // One more PE row/column would bust the budget.
            let bigger = Accelerator::builder("p")
                .pe(dim + 1, dim + 1)
                .sg(Bytes::from_kib(sg_kib))
                .sfu(Sfu::new(256, 16))
                .build();
            prop_assert!(m.area_mm2(&bigger) > budget - 1e-6);
        }
    }

    /// Accelerators serialize and deserialize losslessly (the CLI's
    /// `--accel-json` contract), including the optional L2 level.
    #[test]
    fn accelerator_serde_round_trip(
        pe in 1u64..512,
        sg_kib in 1u64..100_000,
        with_l2 in any::<bool>(),
    ) {
        let mut a = Accelerator::builder("rt")
            .pe(pe, pe)
            .sg(Bytes::from_kib(sg_kib))
            .memory(MemorySystem::new(1.0e12, 5.0e10))
            .build();
        if with_l2 {
            a.l2_sram = Some(L2Sram::new(Bytes::from_mib(4), 2.0e11));
        }
        let json = serde_json::to_string(&a).unwrap();
        let b: Accelerator = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(a, b);
    }

    /// SFU cycles are monotone in elements and respect the throughput
    /// bound.
    #[test]
    fn sfu_monotone(elems in 0u64..10_000_000, lanes in 1u64..8192) {
        let sfu = Sfu::new(lanes, 16);
        let c1 = sfu.softmax_cycles(elems);
        let c2 = sfu.softmax_cycles(elems + lanes);
        prop_assert!(c2 >= c1);
        if elems > 0 {
            prop_assert!(c1 >= elems.div_ceil(lanes));
        }
    }
}
