//! The FLAT executor: maps the tiled attention walk onto contexts.
//!
//! One context per hardware lane — the DMA/NoC lane (off-chip link),
//! the SG buffer port (on-chip link), the optional L2 link, the PE
//! array, and the SFU — connected by bounded channels. The executor
//! replays exactly the per-iteration lane demands the analytical model
//! prices ([`CostModel::fused_lane_demands`]), so on an uncontended
//! machine the steady-state iteration period converges to the
//! analytical `max` fold, and the two backends agree to the pipeline
//! fill/drain transient. Contention (fewer staging buffers than the
//! pricing assumes) breaks the overlap the closed form takes for
//! granted — that divergence is the point of the backend.
//!
//! # Fused (FLAT) topology
//!
//! ```text
//!  credits (capacity = buffers) ──────────────────────────┐
//!    ▼                                                    │
//!  dma ──tiles──▶ pe ──sfu_in──▶ sfu ──sfu_out──▶ pe ─────┘
//!    ├──tiles_sg──▶ sg ──sg_done──▶ pe   (operand streaming,
//!    └──tiles_l2──▶ l2 ──l2_done──▶ pe    concurrent with compute)
//! ```
//!
//! The PE context software-pipelines the two stages the way §4.3
//! describes: iteration `i` runs `A(i-1)` then `L(i)`, so the SFU
//! softmaxes tile `i` while the array works on tile `i+1`.
//!
//! [`CostModel::fused_lane_demands`]: flat_core::CostModel::fused_lane_demands

use crate::engine::{Engine, EngineError, RunStats};
use crate::report::{merge_lanes, BufferUsage, EventReport, LaneUsage};
use crate::script::{Op, Script, ScriptContext};
use flat_arch::Accelerator;
use flat_core::{
    CostModel, FusedDataflow, FusedLaneDemands, LaExecution, ModelOptions, OperatorDataflow,
    SequentialLaneDemands,
};
use flat_workloads::AttentionBlock;
use serde::{Deserialize, Serialize};

/// Event-backend knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventOptions {
    /// Cost-model options the lane demands are derived under (the
    /// analytical side of an agreement run must use the same).
    pub model: ModelOptions,
    /// Staging-buffer slots gating the prefetch (credit pool). 2 is
    /// true double buffering — what the analytical model assumes; 1
    /// serializes fetch against compute (the contended configuration).
    pub buffers: u32,
    /// Sequential phases execute as this many equal pipelined slices.
    pub phase_slices: u64,
    /// Iteration cap; longer workloads extrapolate the measured
    /// steady-state period (mirrors `flat-sim`).
    pub max_iterations: u64,
    /// Record lane slices and buffer-occupancy samples for export.
    pub record_trace: bool,
}

impl Default for EventOptions {
    fn default() -> Self {
        EventOptions {
            model: ModelOptions::default(),
            buffers: 2,
            phase_slices: 64,
            max_iterations: 4096,
            record_trace: false,
        }
    }
}

/// Lane tid assignment for trace export (pid 1 = the simulated chip).
pub(crate) fn lane_tid(name: &str) -> u64 {
    match name {
        "dma" => 1,
        "pe" => 2,
        "sg" => 3,
        "sfu" => 4,
        "l2" => 5,
        _ => 9,
    }
}

/// Builds and runs the fused-pipeline engine for `n` iterations.
fn run_fused(
    d: &FusedLaneDemands,
    n: u64,
    buffers: u32,
    record: bool,
) -> Result<RunStats, EngineError> {
    // A serialized (no-double-buffering) machine has a single staging
    // buffer by definition; extra credits would let the prefetch overlap
    // a pipeline the analytical model prices as serial.
    let b = if d.double_buffered {
        buffers.max(1) as usize
    } else {
        1
    };
    let t_off = d.offchip_cycles();
    let t_on = d.onchip_cycles();
    let has_l2 = d.l2_cycles > 0.0;
    let mut eng = Engine::new(record);

    let credits = eng.channel("credits", b, b);
    let tiles_pe = eng.channel("tiles_pe", b, 0);
    let tiles_sg = eng.channel("tiles_sg", b, 0);
    let tiles_l2 = eng.channel("tiles_l2", b, 0);
    let sg_done = eng.channel("sg_done", b, 0);
    let l2_done = eng.channel("l2_done", b, 0);
    let sfu_in = eng.channel("sfu_in", 1, 0);
    let sfu_out = eng.channel("sfu_out", 1, 0);

    if d.double_buffered {
        // Overlapped wiring: the DMA prefetches ahead on credits; the SG
        // (and L2) stream a tile's operands concurrently with the PE
        // computing on it; the SFU softmaxes tile i during iteration i+1.
        let mut fetch = vec![
            Op::Recv(credits),
            Op::Busy(t_off, "fetch"),
            Op::Send(tiles_pe),
            Op::Send(tiles_sg),
        ];
        if has_l2 {
            fetch.push(Op::Send(tiles_l2));
        }
        let mut first_fetch = vec![Op::Busy(d.warmup_cycles, "warmup")];
        first_fetch.extend(fetch.iter().copied());
        eng.spawn(
            "dma",
            ScriptContext::new(Script {
                prelude: first_fetch,
                body: fetch,
                body_repeats: n - 1,
                epilogue: vec![],
            }),
        );

        // The §4.3 software pipeline: iteration j computes L(j), hands
        // it to the SFU, and only then blocks on the softmax of tile
        // j-1 before computing A(j-1). The SFU therefore runs
        // concurrently with the array's next logit slice; it only
        // stretches the period once sfu_cycles exceeds the compute —
        // exactly the analytical `max`.
        let mut pe_first = vec![
            Op::Recv(tiles_pe),
            Op::Busy(d.logit_compute_cycles, "logit"),
            Op::Send(sfu_in),
            Op::Recv(sg_done),
        ];
        let mut pe_body = vec![
            Op::Recv(tiles_pe),
            Op::Busy(d.logit_compute_cycles, "logit"),
            Op::Send(sfu_in),
            Op::Recv(sfu_out),
            Op::Busy(d.attend_compute_cycles, "attend"),
            Op::Recv(sg_done),
        ];
        if has_l2 {
            pe_first.push(Op::Recv(l2_done));
            pe_body.push(Op::Recv(l2_done));
        }
        pe_first.push(Op::Send(credits));
        pe_body.push(Op::Send(credits));
        eng.spawn(
            "pe",
            ScriptContext::new(Script {
                prelude: pe_first,
                body: pe_body,
                body_repeats: n - 1,
                epilogue: vec![
                    Op::Recv(sfu_out),
                    Op::Busy(d.attend_compute_cycles, "attend"),
                ],
            }),
        );
    } else {
        // Serialized wiring: one buffer, nothing overlaps — fetch,
        // L, softmax, A, and operand streaming run back to back, the
        // way the analytical model's no-double-buffering sum charges.
        eng.spawn(
            "dma",
            ScriptContext::new(Script {
                prelude: vec![Op::Busy(d.warmup_cycles, "warmup")],
                body: vec![
                    Op::Recv(credits),
                    Op::Busy(t_off, "fetch"),
                    Op::Send(tiles_pe),
                ],
                body_repeats: n,
                epilogue: vec![],
            }),
        );
        let mut pe_body = vec![
            Op::Recv(tiles_pe),
            Op::Busy(d.logit_compute_cycles, "logit"),
            Op::Send(sfu_in),
            Op::Recv(sfu_out),
            Op::Busy(d.attend_compute_cycles, "attend"),
            Op::Send(tiles_sg),
            Op::Recv(sg_done),
        ];
        if has_l2 {
            pe_body.push(Op::Send(tiles_l2));
            pe_body.push(Op::Recv(l2_done));
        }
        pe_body.push(Op::Send(credits));
        eng.spawn(
            "pe",
            ScriptContext::new(Script {
                prelude: vec![],
                body: pe_body,
                body_repeats: n,
                epilogue: vec![],
            }),
        );
    }

    eng.spawn(
        "sg",
        ScriptContext::new(Script {
            prelude: vec![],
            body: vec![
                Op::Recv(tiles_sg),
                Op::Busy(t_on, "stream"),
                Op::Send(sg_done),
            ],
            body_repeats: n,
            epilogue: vec![],
        }),
    );
    if has_l2 {
        eng.spawn(
            "l2",
            ScriptContext::new(Script {
                prelude: vec![],
                body: vec![
                    Op::Recv(tiles_l2),
                    Op::Busy(d.l2_cycles, "l2"),
                    Op::Send(l2_done),
                ],
                body_repeats: n,
                epilogue: vec![],
            }),
        );
    }
    eng.spawn(
        "sfu",
        ScriptContext::new(Script {
            prelude: vec![],
            body: vec![
                Op::Recv(sfu_in),
                Op::Busy(d.sfu_cycles, "softmax"),
                Op::Send(sfu_out),
            ],
            body_repeats: n,
            epilogue: vec![],
        }),
    );

    eng.run(120 * n + 10_000)
}

/// Event-driven simulation of the fused (FLAT) L-A execution.
///
/// # Errors
///
/// Returns [`EngineError`] if the wiring livelocks or deadlocks — a bug
/// in the executor, surfaced instead of hung.
pub fn simulate_fused_event(
    accel: &Accelerator,
    block: &AttentionBlock,
    df: &FusedDataflow,
    opts: EventOptions,
) -> Result<EventReport, EngineError> {
    let cm = CostModel::with_options(accel, opts.model);
    let d = cm.fused_lane_demands(block, df);
    let total = d.iterations.max(1);
    let cap = opts.max_iterations.max(8);

    if total <= cap {
        let stats = run_fused(&d, total, opts.buffers, opts.record_trace)?;
        return Ok(EventReport::from_run(
            &stats,
            total,
            total,
            false,
            opts.buffers,
        ));
    }

    // Steady-state extrapolation: two capped runs isolate the
    // per-iteration period from the fill/drain transient.
    let half = cap / 2;
    let full = run_fused(&d, cap, opts.buffers, opts.record_trace)?;
    let short = run_fused(&d, half, opts.buffers, false)?;
    let span = (cap - half) as f64;
    let period = ((full.end_time - short.end_time) / span).max(0.0);
    let mut report = EventReport::from_run(&full, cap, total, true, opts.buffers);
    let remaining = (total - cap) as f64;
    report.cycles = full.end_time + remaining * period;
    for (lane, prior) in report.lanes.iter_mut().zip(&short.contexts) {
        let rate = ((lane.busy_cycles - prior.busy_cycles) / span).max(0.0);
        lane.busy_cycles += remaining * rate;
    }
    report.finish_occupancy();
    Ok(report)
}

/// One sequential phase as a pipelined slice run.
struct PhaseSpec {
    work_lane: &'static str,
    work_label: &'static str,
    /// Totals over the phase (cycles / cycles / cycles).
    compute: f64,
    sfu_aux: f64,
    t_on: f64,
    t_off: f64,
    warmup: f64,
}

/// Runs one phase as `slices` equal pipeline slices.
fn run_phase(
    p: &PhaseSpec,
    slices: u64,
    db: bool,
    buffers: u32,
    record: bool,
) -> Result<RunStats, EngineError> {
    let s = slices.max(1);
    let sf = s as f64;
    let b = if db { buffers.max(1) as usize } else { 1 };
    let mut eng = Engine::new(record);
    let credits = eng.channel("credits", b, b);
    let tiles_work = eng.channel("tiles_work", b, 0);
    let tiles_sg = eng.channel("tiles_sg", b, 0);
    let sg_done = eng.channel("sg_done", b, 0);
    let sfu_in = eng.channel("sfu_in", b, 0);
    let has_aux = p.sfu_aux > 0.0;

    eng.spawn(
        "dma",
        ScriptContext::new(Script {
            prelude: vec![Op::Busy(p.warmup, "warmup")],
            body: if db {
                vec![
                    Op::Recv(credits),
                    Op::Busy(p.t_off / sf, "fetch"),
                    Op::Send(tiles_work),
                    Op::Send(tiles_sg),
                ]
            } else {
                vec![
                    Op::Recv(credits),
                    Op::Busy(p.t_off / sf, "fetch"),
                    Op::Send(tiles_work),
                ]
            },
            body_repeats: s,
            epilogue: vec![],
        }),
    );

    let mut work = vec![Op::Recv(tiles_work), Op::Busy(p.compute / sf, p.work_label)];
    if has_aux {
        work.push(Op::Send(sfu_in));
    }
    if db {
        work.push(Op::Recv(sg_done));
    } else {
        work.push(Op::Send(tiles_sg));
        work.push(Op::Recv(sg_done));
    }
    work.push(Op::Send(credits));
    eng.spawn(
        p.work_lane,
        ScriptContext::new(Script {
            prelude: vec![],
            body: work,
            body_repeats: s,
            epilogue: vec![],
        }),
    );

    eng.spawn(
        "sg",
        ScriptContext::new(Script {
            prelude: vec![],
            body: vec![
                Op::Recv(tiles_sg),
                Op::Busy(p.t_on / sf, "stream"),
                Op::Send(sg_done),
            ],
            body_repeats: s,
            epilogue: vec![],
        }),
    );
    if has_aux {
        eng.spawn(
            "sfu",
            ScriptContext::new(Script {
                prelude: vec![],
                body: vec![Op::Recv(sfu_in), Op::Busy(p.sfu_aux / sf, "softmax")],
                body_repeats: s,
                epilogue: vec![],
            }),
        );
    }
    eng.run(80 * s + 10_000)
}

/// Event-driven simulation of the sequential L → softmax → A execution.
///
/// # Errors
///
/// Returns [`EngineError`] on executor wiring bugs (never on valid
/// inputs).
pub fn simulate_sequential_event(
    accel: &Accelerator,
    block: &AttentionBlock,
    logit_df: &OperatorDataflow,
    attend_df: &OperatorDataflow,
    opts: EventOptions,
) -> Result<EventReport, EngineError> {
    let cm = CostModel::with_options(accel, opts.model);
    let d: SequentialLaneDemands = cm.sequential_lane_demands(block, logit_df, attend_df);
    let on_bpc = d.onchip_bytes_per_cycle;
    let off_bpc = d.offchip_bytes_per_cycle;
    let gemm =
        |p: &flat_core::PhaseLaneDemands, lane: &'static str, label: &'static str| PhaseSpec {
            work_lane: lane,
            work_label: label,
            compute: p.compute_cycles,
            sfu_aux: 0.0,
            t_on: p.onchip_bytes / on_bpc,
            t_off: p.offchip_bytes / off_bpc,
            warmup: p.warmup_cycles,
        };
    let phases: Vec<PhaseSpec> = if d.double_buffered && d.overlap_softmax {
        // Softmax pipelines into the Attend phase: the SFU lane works
        // the same slices concurrently, its traffic riding the links.
        vec![
            gemm(&d.logit, "pe", "logit"),
            PhaseSpec {
                work_lane: "pe",
                work_label: "attend",
                compute: d.attend.compute_cycles,
                sfu_aux: d.softmax.sfu_cycles,
                t_on: (d.attend.onchip_bytes + d.softmax.onchip_bytes) / on_bpc,
                t_off: (d.attend.offchip_bytes + d.softmax.offchip_bytes) / off_bpc,
                warmup: d.attend.warmup_cycles,
            },
        ]
    } else {
        vec![
            gemm(&d.logit, "pe", "logit"),
            PhaseSpec {
                work_lane: "sfu",
                work_label: "softmax",
                compute: d.softmax.sfu_cycles,
                sfu_aux: 0.0,
                t_on: d.softmax.onchip_bytes / on_bpc,
                t_off: d.softmax.offchip_bytes / off_bpc,
                warmup: 0.0,
            },
            gemm(&d.attend, "pe", "attend"),
        ]
    };

    let slices = opts.phase_slices.max(1);
    let mut cycles = 0.0f64;
    let mut lanes: Vec<LaneUsage> = Vec::new();
    let mut trace = Vec::new();
    let mut peak = 0usize;
    let mut occ_weighted = 0.0f64;
    for p in &phases {
        let stats = run_phase(
            p,
            slices,
            d.double_buffered,
            opts.buffers,
            opts.record_trace,
        )?;
        for slice in &stats.trace {
            let lane = stats.contexts[slice.ctx].name.clone();
            trace.push((lane, slice.label, slice.start + cycles, slice.dur));
        }
        merge_lanes(&mut lanes, &stats.contexts);
        if let Some(c) = stats.channels.first() {
            peak = peak.max(c.capacity - c.min_occupancy);
            occ_weighted += (c.capacity as f64 - c.mean_occupancy) * stats.end_time;
        }
        cycles += stats.end_time;
    }
    let total = slices * phases.len() as u64;
    let mut report = EventReport {
        cycles,
        simulated_iterations: total,
        total_iterations: total,
        extrapolated: false,
        lanes,
        buffers: BufferUsage {
            capacity: if d.double_buffered {
                opts.buffers.max(1)
            } else {
                1
            },
            mean_in_flight: if cycles > 0.0 {
                occ_weighted / cycles
            } else {
                0.0
            },
            peak_in_flight: peak as u32,
        },
        slices: trace,
        counter_samples: Vec::new(),
    };
    report.finish_occupancy();
    Ok(report)
}

/// Event-driven simulation of either L-A execution shape.
///
/// # Errors
///
/// Returns [`EngineError`] on executor wiring bugs (never on valid
/// inputs).
pub fn simulate_la_event(
    accel: &Accelerator,
    block: &AttentionBlock,
    la: &LaExecution,
    opts: EventOptions,
) -> Result<EventReport, EngineError> {
    match la {
        LaExecution::Fused(df) => simulate_fused_event(accel, block, df, opts),
        LaExecution::Sequential { logit, attend } => {
            simulate_sequential_event(accel, block, logit, attend, opts)
        }
    }
}
