//! Scripted contexts: a tiny op language for pipeline actors.
//!
//! Every lane of the FLAT executor runs a fixed per-iteration sequence
//! of channel operations and busy intervals (a DMA lane: take a credit,
//! occupy the link, hand the tile on). [`ScriptContext`] interprets such
//! a [`Script`] as a resumable [`Context`] state machine: blocking
//! semantics fall out of re-attempting the current op on re-poll, and
//! every completed busy interval is emitted as a trace slice.

use crate::engine::{ChannelId, Context, Io, Poll};

/// One scripted operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Dequeue a token (blocks while empty).
    Recv(ChannelId),
    /// Enqueue a token (blocks while full — backpressure).
    Send(ChannelId),
    /// Occupy the lane for the given cycles, traced under the label.
    /// Non-positive durations are skipped.
    Busy(f64, &'static str),
}

/// A three-segment program: `prelude`, `body` repeated `body_repeats`
/// times, then `epilogue`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Ops run once at the start (cold-start warmup, first iteration).
    pub prelude: Vec<Op>,
    /// Ops run `body_repeats` times (the steady-state iteration).
    pub body: Vec<Op>,
    /// Number of body iterations.
    pub body_repeats: u64,
    /// Ops run once at the end (pipeline drain).
    pub epilogue: Vec<Op>,
}

/// Which segment the interpreter is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Prelude,
    Body,
    Epilogue,
    Finished,
}

/// A [`Context`] interpreting a [`Script`].
#[derive(Debug, Clone)]
pub struct ScriptContext {
    script: Script,
    segment: Segment,
    pc: usize,
    iter: u64,
    in_busy: Option<(f64, &'static str)>,
    token_override: Option<u64>,
}

impl ScriptContext {
    /// A context at the start of `script`.
    #[must_use]
    pub fn new(script: Script) -> Self {
        let mut ctx = ScriptContext {
            script,
            segment: Segment::Prelude,
            pc: 0,
            iter: 0,
            in_busy: None,
            token_override: None,
        };
        ctx.normalize();
        ctx
    }

    /// Sends this fixed token value instead of the iteration index.
    #[must_use]
    pub fn with_token(mut self, token: u64) -> Self {
        self.token_override = Some(token);
        self
    }

    fn current(&self) -> Option<Op> {
        match self.segment {
            Segment::Prelude => self.script.prelude.get(self.pc).copied(),
            Segment::Body => self.script.body.get(self.pc).copied(),
            Segment::Epilogue => self.script.epilogue.get(self.pc).copied(),
            Segment::Finished => None,
        }
    }

    fn advance(&mut self) {
        self.pc += 1;
        self.normalize();
    }

    /// Moves past exhausted segments so [`current`](Self::current) is
    /// either a real op or `None` (finished).
    fn normalize(&mut self) {
        loop {
            match self.segment {
                Segment::Prelude => {
                    if self.pc < self.script.prelude.len() {
                        return;
                    }
                    self.segment = Segment::Body;
                    self.pc = 0;
                    self.iter = 0;
                }
                Segment::Body => {
                    if self.script.body.is_empty() || self.iter >= self.script.body_repeats {
                        self.segment = Segment::Epilogue;
                        self.pc = 0;
                        continue;
                    }
                    if self.pc < self.script.body.len() {
                        return;
                    }
                    self.pc = 0;
                    self.iter += 1;
                }
                Segment::Epilogue => {
                    if self.pc < self.script.epilogue.len() {
                        return;
                    }
                    self.segment = Segment::Finished;
                }
                Segment::Finished => return,
            }
        }
    }

    fn token(&self) -> u64 {
        self.token_override.unwrap_or(self.iter)
    }
}

impl Context for ScriptContext {
    fn poll(&mut self, io: &mut Io<'_>) -> Poll {
        // A completed busy interval: record the slice, move on.
        if let Some((dur, label)) = self.in_busy.take() {
            io.emit(label, io.now() - dur, dur);
            self.advance();
        }
        loop {
            let Some(op) = self.current() else {
                return Poll::Done;
            };
            match op {
                Op::Busy(dur, label) => {
                    if dur <= 0.0 {
                        self.advance();
                        continue;
                    }
                    self.in_busy = Some((dur, label));
                    return Poll::Busy(dur);
                }
                Op::Recv(ch) => {
                    if io.try_recv(ch).is_some() {
                        self.advance();
                    } else {
                        return Poll::Blocked;
                    }
                }
                Op::Send(ch) => {
                    if io.try_send(ch, self.token()) {
                        self.advance();
                    } else {
                        return Poll::Blocked;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// Zero-duration busy ops are skipped without scheduling churn.
    #[test]
    fn zero_busy_is_free() {
        let mut eng = Engine::new(false);
        let ctx = ScriptContext::new(Script {
            prelude: vec![Op::Busy(0.0, "skip"), Op::Busy(5.0, "work")],
            body: vec![],
            body_repeats: 0,
            epilogue: vec![Op::Busy(0.0, "skip")],
        });
        eng.spawn("lane", ctx);
        let stats = eng.run(100).expect("runs");
        assert!((stats.end_time - 5.0).abs() < 1e-12);
        // One Busy poll + one completion poll.
        assert_eq!(stats.events, 2);
    }

    /// Prelude, body xN, epilogue execute in order with correct counts.
    #[test]
    fn segments_execute_in_order() {
        let mut eng = Engine::new(true);
        let ctx = ScriptContext::new(Script {
            prelude: vec![Op::Busy(1.0, "warmup")],
            body: vec![Op::Busy(2.0, "iter")],
            body_repeats: 3,
            epilogue: vec![Op::Busy(4.0, "drain")],
        });
        eng.spawn("lane", ctx);
        let stats = eng.run(100).expect("runs");
        assert!((stats.end_time - 11.0).abs() < 1e-12);
        let labels: Vec<&str> = stats.trace.iter().map(|s| s.label).collect();
        assert_eq!(labels, vec!["warmup", "iter", "iter", "iter", "drain"]);
    }

    /// An empty script retires immediately.
    #[test]
    fn empty_script_is_done() {
        let mut eng = Engine::new(false);
        eng.spawn("lane", ScriptContext::new(Script::default()));
        let stats = eng.run(10).expect("runs");
        assert_eq!(stats.end_time, 0.0);
    }
}
