//! The event-backend result: cycles, lane usage, buffer occupancy, and
//! the Perfetto-loadable trace built through `flat-telemetry`.

use crate::engine::{ContextStats, RunStats};
use crate::executor::lane_tid;
use flat_telemetry::{sort_events, Event};

/// Busy time of one hardware lane (context) over the run.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneUsage {
    /// Lane name (`"dma"`, `"pe"`, `"sg"`, `"sfu"`, `"l2"`).
    pub name: String,
    /// Cycles the lane spent occupied.
    pub busy_cycles: f64,
    /// `busy_cycles / total cycles` — the lane's utilization.
    pub occupancy: f64,
}

/// Staging-buffer (credit-pool) occupancy over the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferUsage {
    /// Configured staging slots.
    pub capacity: u32,
    /// Time-weighted mean tiles in flight (fetched, not yet retired).
    pub mean_in_flight: f64,
    /// Peak tiles in flight — hits `capacity` when the prefetch runs
    /// ahead as far as the buffers allow.
    pub peak_in_flight: u32,
}

/// The result of an event-driven simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EventReport {
    /// Simulated makespan in cycles (extrapolated past the iteration
    /// cap when [`extrapolated`](Self::extrapolated)).
    pub cycles: f64,
    /// Iterations (or phase slices) actually executed by the engine.
    pub simulated_iterations: u64,
    /// Iterations the workload demands.
    pub total_iterations: u64,
    /// Whether `cycles` extends the measured steady-state period past
    /// the iteration cap.
    pub extrapolated: bool,
    /// Per-lane busy time and utilization.
    pub lanes: Vec<LaneUsage>,
    /// Staging-buffer occupancy.
    pub buffers: BufferUsage,
    /// Recorded lane slices: `(lane, label, start, dur)` in cycles.
    pub(crate) slices: Vec<(String, &'static str, f64, f64)>,
    /// Tiles-in-flight counter samples: `(time, value)`.
    pub(crate) counter_samples: Vec<(f64, u32)>,
}

/// Merges per-context busy time into a lane list keyed by name (phases
/// of a sequential run reuse the same lanes).
pub(crate) fn merge_lanes(lanes: &mut Vec<LaneUsage>, contexts: &[ContextStats]) {
    for c in contexts {
        match lanes.iter_mut().find(|l| l.name == c.name) {
            Some(lane) => lane.busy_cycles += c.busy_cycles,
            None => lanes.push(LaneUsage {
                name: c.name.clone(),
                busy_cycles: c.busy_cycles,
                occupancy: 0.0,
            }),
        }
    }
}

impl EventReport {
    /// Builds a report from one engine run. `buffers` is the configured
    /// credit-pool capacity (reported even when the run kept no samples).
    pub(crate) fn from_run(
        stats: &RunStats,
        simulated: u64,
        total: u64,
        extrapolated: bool,
        buffers: u32,
    ) -> Self {
        let mut lanes = Vec::new();
        merge_lanes(&mut lanes, &stats.contexts);
        let credits = stats.channels.iter().find(|c| c.name == "credits");
        let buffers_usage = match credits {
            Some(c) => BufferUsage {
                capacity: c.capacity as u32,
                mean_in_flight: c.capacity as f64 - c.mean_occupancy,
                peak_in_flight: (c.capacity - c.min_occupancy) as u32,
            },
            None => BufferUsage {
                capacity: buffers.max(1),
                mean_in_flight: 0.0,
                peak_in_flight: 0,
            },
        };
        let slices = stats
            .trace
            .iter()
            .map(|s| (stats.contexts[s.ctx].name.clone(), s.label, s.start, s.dur))
            .collect();
        let counter_samples = credits
            .map(|c| {
                c.samples
                    .iter()
                    .map(|&(t, len)| (t, (c.capacity - len) as u32))
                    .collect()
            })
            .unwrap_or_default();
        let mut report = EventReport {
            cycles: stats.end_time,
            simulated_iterations: simulated,
            total_iterations: total,
            extrapolated,
            lanes,
            buffers: buffers_usage,
            slices,
            counter_samples,
        };
        report.finish_occupancy();
        report
    }

    /// Recomputes each lane's occupancy from its busy time and the
    /// report's (possibly extrapolated) total cycles.
    pub(crate) fn finish_occupancy(&mut self) {
        for lane in &mut self.lanes {
            lane.occupancy = if self.cycles > 0.0 {
                (lane.busy_cycles / self.cycles).min(1.0)
            } else {
                0.0
            };
        }
    }

    /// Busy cycles of the named lane, 0 if the lane did not run.
    #[must_use]
    pub fn lane_busy(&self, name: &str) -> f64 {
        self.lanes
            .iter()
            .find(|l| l.name == name)
            .map_or(0.0, |l| l.busy_cycles)
    }

    /// The recorded per-lane trace as telemetry events, in the
    /// deterministic `(ts, pid, tid, name)` total order: pid 1 is the
    /// simulated chip, one thread lane per hardware lane, plus a
    /// tiles-in-flight counter track. Timestamps are cycles (viewers
    /// display them as microseconds — the unit label, not the ordering,
    /// is cosmetic).
    #[must_use]
    pub fn trace_events(&self) -> Vec<Event> {
        const PID: u32 = 1;
        let mut events = vec![Event::process_name(PID, "flat-desim")];
        let mut named: Vec<&str> = Vec::new();
        for (lane, _, _, _) in &self.slices {
            if !named.contains(&lane.as_str()) {
                named.push(lane);
            }
        }
        named.sort_unstable();
        for lane in named {
            events.push(Event::thread_name(PID, lane_tid(lane), lane));
        }
        for (lane, label, start, dur) in &self.slices {
            events.push(Event::complete(
                label,
                "desim",
                *start,
                *dur,
                PID,
                lane_tid(lane),
            ));
        }
        for &(t, v) in &self.counter_samples {
            events.push(
                Event::counter("tiles in flight", "desim", t, PID, 0).arg("tiles", u64::from(v)),
            );
        }
        sort_events(&mut events);
        events
    }

    /// Serializes the trace as one Chrome trace JSON document
    /// (Perfetto-loadable).
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        flat_telemetry::chrome_trace_json(&self.trace_events())
    }
}
