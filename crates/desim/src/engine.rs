//! The discrete-event runtime: a virtual-time event queue scheduling
//! [`Context`] actors connected by bounded [channels](Engine::channel)
//! with blocking send/recv backpressure.
//!
//! # Execution model
//!
//! A context is a resumable state machine. The engine polls it; the
//! context performs any number of non-blocking channel operations
//! through [`Io`] and returns a [`Poll`]:
//!
//! * [`Poll::Busy`]`(d)` — the context occupies its lane for `d` cycles;
//!   the engine re-polls it at `now + d`.
//! * [`Poll::Blocked`] — a channel operation could not complete (empty
//!   recv or full send). The context is parked; the engine re-polls it
//!   when the channel it blocked on changes state. Spurious wake-ups are
//!   allowed, so contexts must re-attempt the same operation when
//!   re-polled.
//! * [`Poll::Done`] — the context retires.
//!
//! # Determinism
//!
//! Virtual time is `f64` cycles ordered by `total_cmp`. Events at equal
//! timestamps pop in insertion order (a monotone sequence number breaks
//! ties), so a run is a pure function of the wiring — there is no
//! hash-ordered container or host-time dependence anywhere. Two runs of
//! the same program produce byte-identical traces; the agreement suite
//! pins this.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Handle to a bounded channel created by [`Engine::channel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(pub(crate) usize);

/// Handle to a context spawned by [`Engine::spawn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextId(pub(crate) usize);

/// What a context does next, returned from [`Context::poll`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Poll {
    /// Occupy the lane for this many cycles, then resume.
    Busy(f64),
    /// Parked on a channel; re-poll on channel activity.
    Blocked,
    /// Retired.
    Done,
}

/// A simulated actor (one PE/buffer-port/DMA lane of the machine).
pub trait Context {
    /// Advance the state machine as far as it can go at the current
    /// virtual time. Must be idempotent under spurious re-polls.
    fn poll(&mut self, io: &mut Io<'_>) -> Poll;
}

/// One recorded lane slice (for Chrome-trace export).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSlice {
    /// Index of the context that was busy.
    pub ctx: usize,
    /// Slice label (`"fetch"`, `"logit"`, `"softmax"`, …).
    pub label: &'static str,
    /// Start time in cycles.
    pub start: f64,
    /// Duration in cycles.
    pub dur: f64,
}

/// Channel occupancy statistics over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Channel name given at creation.
    pub name: String,
    /// Bound on queued tokens.
    pub capacity: usize,
    /// Time-weighted mean queue length.
    pub mean_occupancy: f64,
    /// Smallest queue length observed.
    pub min_occupancy: usize,
    /// Largest queue length observed.
    pub max_occupancy: usize,
    /// `(time, length)` samples at every state change, recorded only
    /// when the engine traces (for counter-track export).
    pub samples: Vec<(f64, usize)>,
}

/// Per-context lane statistics over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextStats {
    /// Context name given at spawn.
    pub name: String,
    /// Total cycles spent in [`Poll::Busy`] — the lane's link-busy time.
    pub busy_cycles: f64,
}

/// The result of [`Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Virtual time when the last context retired (the makespan).
    pub end_time: f64,
    /// Number of events processed.
    pub events: u64,
    /// Per-lane busy time, in spawn order.
    pub contexts: Vec<ContextStats>,
    /// Per-channel occupancy, in creation order.
    pub channels: Vec<ChannelStats>,
    /// Recorded lane slices (empty unless tracing).
    pub trace: Vec<TraceSlice>,
}

/// Why a run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The event budget was exhausted — a context is livelocked.
    Livelock {
        /// Events processed before giving up.
        events: u64,
    },
    /// The event queue drained with contexts still parked.
    Deadlock {
        /// Names of the contexts that never retired.
        blocked: Vec<String>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Livelock { events } => {
                write!(f, "livelock: event budget exhausted after {events} events")
            }
            EngineError::Deadlock { blocked } => {
                write!(
                    f,
                    "deadlock: contexts never retired: {}",
                    blocked.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

struct ChannelCore {
    name: String,
    capacity: usize,
    queue: VecDeque<u64>,
    wait_send: Vec<usize>,
    wait_recv: Vec<usize>,
    occupancy_integral: f64,
    last_change: f64,
    prev_len: usize,
    min_len: usize,
    max_len: usize,
    samples: Vec<(f64, usize)>,
}

impl ChannelCore {
    fn note_change(&mut self, now: f64, sample: bool) {
        let len = self.queue.len();
        self.occupancy_integral += self.prev_len as f64 * (now - self.last_change).max(0.0);
        self.last_change = now;
        self.prev_len = len;
        self.min_len = self.min_len.min(len);
        self.max_len = self.max_len.max(len);
        if sample {
            self.samples.push((now, len));
        }
    }
}

/// Event-queue key: `(time, seq)` with `total_cmp` time ordering — ties
/// on equal timestamps resolve deterministically in insertion order.
struct EventKey {
    time: f64,
    seq: u64,
    ctx: usize,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Non-blocking channel operations a [`Context`] performs while polled.
pub struct Io<'a> {
    now: f64,
    ctx: usize,
    channels: &'a mut [ChannelCore],
    wakes: &'a mut Vec<usize>,
    sample: bool,
    trace: Option<&'a mut Vec<TraceSlice>>,
}

impl Io<'_> {
    /// Current virtual time in cycles.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Attempts to dequeue a token. On `None` the context is registered
    /// as a waiting receiver and must return [`Poll::Blocked`].
    pub fn try_recv(&mut self, ch: ChannelId) -> Option<u64> {
        let now = self.now;
        let sample = self.sample;
        let c = &mut self.channels[ch.0];
        match c.queue.pop_front() {
            Some(tok) => {
                c.note_change(now, sample);
                self.wakes.append(&mut c.wait_send);
                Some(tok)
            }
            None => {
                if !c.wait_recv.contains(&self.ctx) {
                    c.wait_recv.push(self.ctx);
                }
                None
            }
        }
    }

    /// Attempts to enqueue a token. On `false` the channel is full: the
    /// context is registered as a waiting sender and must return
    /// [`Poll::Blocked`] — this is the backpressure edge.
    pub fn try_send(&mut self, ch: ChannelId, token: u64) -> bool {
        let now = self.now;
        let sample = self.sample;
        let c = &mut self.channels[ch.0];
        if c.queue.len() >= c.capacity {
            if !c.wait_send.contains(&self.ctx) {
                c.wait_send.push(self.ctx);
            }
            return false;
        }
        c.queue.push_back(token);
        c.note_change(now, sample);
        self.wakes.append(&mut c.wait_recv);
        true
    }

    /// Records a completed busy slice on this context's lane (no-op
    /// unless the engine traces).
    pub fn emit(&mut self, label: &'static str, start: f64, dur: f64) {
        if let Some(trace) = self.trace.as_deref_mut() {
            if dur > 0.0 {
                trace.push(TraceSlice {
                    ctx: self.ctx,
                    label,
                    start,
                    dur,
                });
            }
        }
    }
}

/// The simulation engine: owns contexts, channels, and the event queue.
pub struct Engine {
    contexts: Vec<Box<dyn Context>>,
    names: Vec<String>,
    channels: Vec<ChannelCore>,
    record_trace: bool,
}

impl Engine {
    /// A new engine. `record_trace` enables lane slices and channel
    /// occupancy samples (off for long extrapolation runs).
    #[must_use]
    pub fn new(record_trace: bool) -> Self {
        Engine {
            contexts: Vec::new(),
            names: Vec::new(),
            channels: Vec::new(),
            record_trace,
        }
    }

    /// Creates a bounded channel pre-filled with `prefill` tokens
    /// (credit-based flow control starts from a full credit pool).
    /// `prefill` is clamped to `capacity`.
    pub fn channel(&mut self, name: &str, capacity: usize, prefill: usize) -> ChannelId {
        let prefill = prefill.min(capacity);
        let queue: VecDeque<u64> = (0..prefill as u64).collect();
        let len = queue.len();
        self.channels.push(ChannelCore {
            name: name.to_owned(),
            capacity: capacity.max(1),
            queue,
            wait_send: Vec::new(),
            wait_recv: Vec::new(),
            occupancy_integral: 0.0,
            last_change: 0.0,
            prev_len: len,
            min_len: len,
            max_len: len,
            samples: if self.record_trace {
                vec![(0.0, len)]
            } else {
                Vec::new()
            },
        });
        ChannelId(self.channels.len() - 1)
    }

    /// Spawns a context on its own lane. Spawn order is the tie-break
    /// order for simultaneous initial events.
    pub fn spawn(&mut self, name: &str, ctx: impl Context + 'static) -> ContextId {
        self.contexts.push(Box::new(ctx));
        self.names.push(name.to_owned());
        ContextId(self.contexts.len() - 1)
    }

    /// Runs to completion (all contexts [`Poll::Done`]) or failure.
    /// `max_events` bounds total polls against livelock.
    pub fn run(&mut self, max_events: u64) -> Result<RunStats, EngineError> {
        let n = self.contexts.len();
        let mut heap: BinaryHeap<Reverse<EventKey>> = BinaryHeap::with_capacity(n * 2);
        let mut seq: u64 = 0;
        for ctx in 0..n {
            heap.push(Reverse(EventKey {
                time: 0.0,
                seq,
                ctx,
            }));
            seq += 1;
        }
        let mut done = vec![false; n];
        let mut busy = vec![0.0f64; n];
        let mut finished = 0usize;
        let mut end_time = 0.0f64;
        let mut events: u64 = 0;
        let mut wakes: Vec<usize> = Vec::new();
        let mut trace: Vec<TraceSlice> = Vec::new();

        while let Some(Reverse(key)) = heap.pop() {
            if done[key.ctx] {
                continue;
            }
            events += 1;
            if events > max_events {
                return Err(EngineError::Livelock { events });
            }
            let mut io = Io {
                now: key.time,
                ctx: key.ctx,
                channels: &mut self.channels,
                wakes: &mut wakes,
                sample: self.record_trace,
                trace: if self.record_trace {
                    Some(&mut trace)
                } else {
                    None
                },
            };
            let poll = self.contexts[key.ctx].poll(&mut io);
            for w in wakes.drain(..) {
                if !done[w] {
                    heap.push(Reverse(EventKey {
                        time: key.time,
                        seq,
                        ctx: w,
                    }));
                    seq += 1;
                }
            }
            match poll {
                Poll::Busy(d) => {
                    let d = d.max(0.0);
                    busy[key.ctx] += d;
                    let t = key.time + d;
                    end_time = end_time.max(t);
                    heap.push(Reverse(EventKey {
                        time: t,
                        seq,
                        ctx: key.ctx,
                    }));
                    seq += 1;
                }
                Poll::Blocked => {}
                Poll::Done => {
                    done[key.ctx] = true;
                    finished += 1;
                    end_time = end_time.max(key.time);
                }
            }
        }

        if finished < n {
            let blocked = (0..n)
                .filter(|&i| !done[i])
                .map(|i| self.names[i].clone())
                .collect();
            return Err(EngineError::Deadlock { blocked });
        }

        let contexts = self
            .names
            .iter()
            .zip(&busy)
            .map(|(name, &busy_cycles)| ContextStats {
                name: name.clone(),
                busy_cycles,
            })
            .collect();
        let channels = self
            .channels
            .iter_mut()
            .map(|c| {
                c.note_change(end_time, false);
                ChannelStats {
                    name: c.name.clone(),
                    capacity: c.capacity,
                    mean_occupancy: if end_time > 0.0 {
                        c.occupancy_integral / end_time
                    } else {
                        c.prev_len as f64
                    },
                    min_occupancy: c.min_len,
                    max_occupancy: c.max_len,
                    samples: std::mem::take(&mut c.samples),
                }
            })
            .collect();
        Ok(RunStats {
            end_time,
            events,
            contexts,
            channels,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{Op, Script, ScriptContext};

    fn producer(n: u64, dur: f64, out: ChannelId) -> ScriptContext {
        ScriptContext::new(Script {
            prelude: vec![],
            body: vec![Op::Busy(dur, "produce"), Op::Send(out)],
            body_repeats: n,
            epilogue: vec![],
        })
    }

    fn consumer(n: u64, dur: f64, input: ChannelId) -> ScriptContext {
        ScriptContext::new(Script {
            prelude: vec![],
            body: vec![Op::Recv(input), Op::Busy(dur, "consume")],
            body_repeats: n,
            epilogue: vec![],
        })
    }

    /// Pipeline throughput is set by the slowest stage.
    #[test]
    fn bottleneck_sets_throughput() {
        let mut eng = Engine::new(false);
        let ch = eng.channel("q", 4, 0);
        eng.spawn("prod", producer(100, 1.0, ch));
        eng.spawn("cons", consumer(100, 3.0, ch));
        let stats = eng.run(100_000).expect("runs");
        // 100 tokens at 3 cycles each, plus the first token's fill.
        assert!((stats.end_time - 301.0).abs() < 1e-9, "{}", stats.end_time);
    }

    /// A capacity-1 channel backpressures the producer to lock-step.
    #[test]
    fn bounded_channel_backpressures() {
        let mut eng = Engine::new(false);
        let ch = eng.channel("q", 1, 0);
        eng.spawn("prod", producer(10, 2.0, ch));
        eng.spawn("cons", consumer(10, 2.0, ch));
        let stats = eng.run(100_000).expect("runs");
        assert!((stats.end_time - 22.0).abs() < 1e-9, "{}", stats.end_time);
        // Capacity 4 would let the producer run ahead; occupancy proves
        // the bound held.
        let occ = &stats.channels[0];
        assert_eq!(occ.max_occupancy, 1);
    }

    /// Same program, two runs: identical event counts, times, and
    /// traces — the determinism contract.
    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut eng = Engine::new(true);
            let a = eng.channel("a", 2, 0);
            let b = eng.channel("b", 2, 0);
            let forward = ScriptContext::new(Script {
                prelude: vec![],
                body: vec![Op::Recv(a), Op::Busy(1.5, "fwd"), Op::Send(b)],
                body_repeats: 20,
                epilogue: vec![],
            });
            eng.spawn("prod", producer(20, 1.0, a));
            eng.spawn("fwd", forward);
            eng.spawn("cons", consumer(20, 2.5, b));
            eng
        };
        let s1 = build().run(100_000).expect("runs");
        let s2 = build().run(100_000).expect("runs");
        assert_eq!(s1.events, s2.events);
        assert_eq!(s1.end_time.to_bits(), s2.end_time.to_bits());
        assert_eq!(s1.trace, s2.trace);
    }

    /// Two producers racing at the same timestamp resolve in spawn
    /// order — the deterministic tie-break.
    #[test]
    fn equal_timestamps_resolve_in_spawn_order() {
        let mut eng = Engine::new(false);
        let ch = eng.channel("q", 2, 0);
        // Both want to send at t=0 into a capacity-2 channel; a single
        // consumer drains both. First spawned sends first.
        let send_only = |tok: u64| {
            ScriptContext::new(Script {
                prelude: vec![Op::Send(ch)],
                body: vec![],
                body_repeats: 0,
                epilogue: vec![],
            })
            .with_token(tok)
        };
        eng.spawn("first", send_only(7));
        eng.spawn("second", send_only(9));
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let collect = Collector {
            input: ch,
            remaining: 2,
            seen: order.clone(),
        };
        eng.spawn("collector", collect);
        eng.run(1000).expect("runs");
        assert_eq!(*order.borrow(), vec![7, 9]);
    }

    /// Unfinishable wiring is reported as a deadlock, not a hang.
    #[test]
    fn deadlock_is_detected() {
        let mut eng = Engine::new(false);
        let ch = eng.channel("never", 1, 0);
        eng.spawn("cons", consumer(1, 1.0, ch));
        let err = eng.run(1000).expect_err("deadlocks");
        match err {
            EngineError::Deadlock { blocked } => assert_eq!(blocked, vec!["cons".to_owned()]),
            other => panic!("wrong error: {other:?}"),
        }
    }

    /// The livelock guard trips instead of spinning forever.
    #[test]
    fn event_budget_bounds_runaway() {
        let mut eng = Engine::new(false);
        let ch = eng.channel("q", 1, 0);
        eng.spawn("prod", producer(1_000_000, 0.5, ch));
        eng.spawn("cons", consumer(1_000_000, 0.5, ch));
        let err = eng.run(100).expect_err("budget");
        assert!(matches!(err, EngineError::Livelock { .. }));
    }

    /// Test helper: records recv order into a shared vec.
    struct Collector {
        input: ChannelId,
        remaining: u32,
        seen: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
    }
    impl Context for Collector {
        fn poll(&mut self, io: &mut Io<'_>) -> Poll {
            while self.remaining > 0 {
                match io.try_recv(self.input) {
                    Some(tok) => {
                        self.seen.borrow_mut().push(tok);
                        self.remaining -= 1;
                    }
                    None => return Poll::Blocked,
                }
            }
            Poll::Done
        }
    }
}
