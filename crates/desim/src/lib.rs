//! `flat-desim` — a discrete-event simulation backend that
//! cross-validates the FLAT analytical cost model.
//!
//! The analytical model (`flat-core`) prices an attention dataflow with
//! a closed form: per-iteration lane times folded by `max` (overlapped)
//! or sum (serialized), times the iteration count, plus warmup. That
//! fold *assumes* the overlap it prices — enough staging buffers that
//! the prefetch always hides, a softmax unit that never backs the array
//! up. This crate checks the assumption by executing the same walk:
//!
//! * [`Engine`] — a virtual-time event queue scheduling [`Context`]
//!   actors connected by bounded channels with blocking send/recv
//!   backpressure. Deterministic: `f64` time ordered by `total_cmp`,
//!   equal timestamps resolved in insertion order, no hash containers.
//! * [`ScriptContext`] — pipeline actors as declarative op lists
//!   (recv / send / busy), so every executor lane is data, not code.
//! * [`simulate_la_event`] — the FLAT executor: one context per
//!   hardware lane (PE array, SFU, SG buffer port, L2 link, DMA/NoC
//!   lane), fed by exactly the per-iteration lane demands the
//!   analytical model priced ([`flat_core::FusedLaneDemands`]).
//! * [`EventReport`] — cycles, per-lane busy time, staging-buffer
//!   occupancy, and a Perfetto-loadable Chrome trace through
//!   `flat-telemetry` (one thread lane per hardware lane, a
//!   tiles-in-flight counter track).
//!
//! On an uncontended machine (buffers ≥ 2, the double-buffering the
//! model assumes) the pipeline's steady-state iteration period converges
//! to the analytical `max` fold and the two backends agree to the
//! pipeline-fill transient — a few per mil at realistic iteration
//! counts, pinned at ≤ 5 % by the agreement suite. Starve the overlap
//! (one staging buffer) and the event backend serializes fetch behind
//! compute while the closed form keeps taking the `max`: the measured
//! divergence is the model's optimism, quantified. `flat sim --engine
//! both` reports it per configuration.
//!
//! # Example
//!
//! ```
//! use flat_arch::Accelerator;
//! use flat_core::{CostModel, FusedDataflow, Granularity};
//! use flat_desim::{simulate_fused_event, EventOptions};
//! use flat_workloads::Model;
//!
//! let accel = Accelerator::edge();
//! let block = Model::bert().block(64, 1024);
//! let df = FusedDataflow::new(Granularity::Row(64));
//!
//! let analytical = CostModel::new(&accel).fused_la_cost(&block, &df);
//! let event = simulate_fused_event(&accel, &block, &df, EventOptions::default())
//!     .expect("wiring is sound");
//!
//! let divergence = (event.cycles - analytical.cycles).abs() / analytical.cycles;
//! assert!(divergence < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Same robustness contract as the rest of the stack: a validation
// backend must never panic a run. CI gates this.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod engine;
mod executor;
mod report;
mod script;

pub use engine::{
    ChannelId, ChannelStats, Context, ContextId, ContextStats, Engine, EngineError, Io, Poll,
    RunStats, TraceSlice,
};
pub use executor::{
    simulate_fused_event, simulate_la_event, simulate_sequential_event, EventOptions,
};
pub use report::{BufferUsage, EventReport, LaneUsage};
pub use script::{Op, Script, ScriptContext};
