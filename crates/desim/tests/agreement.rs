//! The cross-validation contract between the event backend and the
//! analytical cost model.
//!
//! Uncontended configurations — staging buffers ≥ 2, the double
//! buffering the closed form assumes — must agree within 5 % (tier-1).
//! Contended configurations must *diverge measurably*: that the event
//! backend can catch the analytical model's optimism is the reason the
//! backend exists (see EXPERIMENTS.md, "Model validation").

use flat_arch::Accelerator;
use flat_core::{
    CostModel, FusedDataflow, Granularity, ModelOptions, OperatorDataflow, Stationarity,
};
use flat_desim::{simulate_fused_event, simulate_sequential_event, EventOptions};
use flat_workloads::Model;

/// Relative divergence of the event backend from the analytical pricing.
fn fused_divergence(accel: &Accelerator, seq: u64, g: Granularity, opts: EventOptions) -> f64 {
    let block = Model::bert().block(64, seq);
    let analytical = CostModel::with_options(accel, opts.model)
        .fused_la_cost(&block, &FusedDataflow::new(g))
        .cycles;
    let event = simulate_fused_event(accel, &block, &FusedDataflow::new(g), opts)
        .expect("wiring is sound")
        .cycles;
    (event - analytical) / analytical
}

/// Tier-1: every uncontended fused configuration in the validation grid
/// agrees within the 5 % tolerance `flat sim --engine both` defaults to.
#[test]
fn uncontended_fused_grid_agrees_within_tolerance() {
    for accel in [Accelerator::edge(), Accelerator::cloud()] {
        for seq in [512u64, 1024, 4096] {
            for g in [
                Granularity::Row(64),
                Granularity::Row(256),
                Granularity::Head,
            ] {
                let div = fused_divergence(&accel, seq, g, EventOptions::default());
                assert!(
                    div.abs() <= 0.05,
                    "{} seq={seq} {g:?}: divergence {:.3}% exceeds 5%",
                    accel.name,
                    div * 100.0
                );
            }
        }
    }
}

/// The sequential (baseline) pipeline also validates, at the same
/// tolerance: phase fills are small against 64-slice phases.
#[test]
fn sequential_baseline_agrees_within_tolerance() {
    let df = OperatorDataflow::baseline(Stationarity::Weight);
    for accel in [Accelerator::edge(), Accelerator::cloud()] {
        for seq in [512u64, 4096] {
            let block = Model::bert().block(64, seq);
            let analytical = CostModel::new(&accel)
                .sequential_la_cost(&block, &df, &df)
                .cycles;
            let event =
                simulate_sequential_event(&accel, &block, &df, &df, EventOptions::default())
                    .expect("wiring is sound")
                    .cycles;
            let div = (event - analytical) / analytical;
            assert!(
                div.abs() <= 0.05,
                "{} seq={seq}: divergence {:.3}%",
                accel.name,
                div * 100.0
            );
        }
    }
}

/// Without double buffering both backends serialize the same way; the
/// agreement is essentially exact.
#[test]
fn serialized_machine_agrees_tightly() {
    let model = ModelOptions {
        double_buffered: false,
        ..Default::default()
    };
    let opts = EventOptions {
        model,
        ..Default::default()
    };
    let div = fused_divergence(&Accelerator::edge(), 4096, Granularity::Row(64), opts);
    assert!(div.abs() < 1e-3, "serial divergence {:.4}%", div * 100.0);
}

/// The contended fixture: one staging buffer under double-buffered
/// pricing. The event backend serializes every fetch behind the compute
/// it can no longer hide under; the closed form keeps taking the `max`.
/// The divergence must be large enough that a validation sweep cannot
/// miss it.
#[test]
fn single_staging_buffer_diverges_measurably() {
    let opts = EventOptions {
        buffers: 1,
        ..Default::default()
    };
    let div = fused_divergence(&Accelerator::edge(), 4096, Granularity::Row(64), opts);
    assert!(
        div > 0.10,
        "contended config must diverge >10%, got {:.3}%",
        div * 100.0
    );
}

/// The other documented divergence: a single-tile pass (BatchMultiHead
/// granularity runs the whole walk as one iteration) has no steady state
/// for the fill transient to amortize into, so the analytical overlap
/// assumption fails wholesale.
#[test]
fn single_tile_pass_exposes_the_fill_transient() {
    let div = fused_divergence(
        &Accelerator::edge(),
        4096,
        Granularity::BatchMultiHead,
        EventOptions::default(),
    );
    assert!(
        div > 0.10,
        "iterations=1 must expose the transient, got {:.3}%",
        div * 100.0
    );
}

/// Steady-state extrapolation reproduces the full run: capping at 4096
/// iterations and extending by the measured period lands within 0.5 %
/// of simulating all 49 k iterations.
#[test]
fn extrapolation_matches_the_full_run() {
    let accel = Accelerator::edge();
    let block = Model::bert().block(64, 4096);
    let df = FusedDataflow::new(Granularity::Row(64));
    let capped = simulate_fused_event(&accel, &block, &df, EventOptions::default())
        .expect("wiring is sound");
    assert!(capped.extrapolated);
    assert_eq!(capped.simulated_iterations, 4096);
    let full = simulate_fused_event(
        &accel,
        &block,
        &df,
        EventOptions {
            max_iterations: u64::MAX,
            ..Default::default()
        },
    )
    .expect("wiring is sound");
    assert!(!full.extrapolated);
    assert_eq!(full.simulated_iterations, full.total_iterations);
    let err = (capped.cycles - full.cycles).abs() / full.cycles;
    assert!(err < 0.005, "extrapolation error {:.4}%", err * 100.0);
}

/// Two identical runs export byte-identical Chrome traces — the
/// determinism contract, end to end through the telemetry sort.
#[test]
fn event_traces_are_byte_deterministic() {
    let run = || {
        let accel = Accelerator::edge();
        let block = Model::bert().block(64, 512);
        let df = FusedDataflow::new(Granularity::Head);
        simulate_fused_event(
            &accel,
            &block,
            &df,
            EventOptions {
                record_trace: true,
                max_iterations: 512,
                ..Default::default()
            },
        )
        .expect("wiring is sound")
        .to_chrome_trace()
    };
    let a = run();
    let b = run();
    assert!(a == b, "traces must be byte-identical");
    assert!(a.starts_with("{\"traceEvents\":["));
    assert!(a.contains("\"ph\":\"X\"") && a.contains("\"ph\":\"C\""));
}

/// The report's lane accounting is coherent: occupancies are in [0, 1]
/// and the PE lane's busy time matches the priced compute.
#[test]
fn lane_accounting_is_coherent() {
    let accel = Accelerator::edge();
    let block = Model::bert().block(64, 1024);
    let df = FusedDataflow::new(Granularity::Row(64));
    let report = simulate_fused_event(&accel, &block, &df, EventOptions::default())
        .expect("wiring is sound");
    for lane in &report.lanes {
        assert!(
            (0.0..=1.0).contains(&lane.occupancy),
            "{}: occupancy {}",
            lane.name,
            lane.occupancy
        );
    }
    let demands = CostModel::new(&accel).fused_lane_demands(&block, &df);
    let priced_pe = demands.iterations as f64 * demands.compute_cycles;
    let rel = (report.lane_busy("pe") - priced_pe).abs() / priced_pe;
    assert!(rel < 0.01, "pe busy time off by {:.3}%", rel * 100.0);
    assert!(report.buffers.peak_in_flight <= report.buffers.capacity);
    assert!(report.buffers.capacity == 2);
}
