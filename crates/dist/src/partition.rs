//! Sharding strategies: how one attention layer is split across chips and
//! what the split costs in collectives.
//!
//! Each [`Partition`] answers two questions for a cluster of `p` chips:
//!
//! 1. **What does each chip compute?** — [`Partition::shard_config`]
//!    shrinks an [`AttentionConfig`] to the per-chip workload (heads for
//!    head-parallel, the KV side of the `N²` tile for sequence-parallel
//!    and KV-shard decode). Uneven splits round *up*: the modeled chip is
//!    the critical-path chip that got the ceiling share.
//! 2. **What must the chips exchange?** — [`Partition::collectives`]
//!    lists the [`CollectiveCall`]s (operation + exact byte count) the
//!    shard boundary forces per layer.
//!
//! The sequence-parallel exchange is the FLAT-specific one: each chip
//! holds a `seq_kv / p` slice of K/V and produces, per query row and
//! head, a *partial* online-softmax state — the running max `m`, running
//! sum `s`, and the `dk`-wide weighted accumulator. Merging those states
//! is exactly the [`flat_kernels::OnlineSoftmax`] fold run across chips
//! (numerically witnessed in [`crate::sharded`]), and its payload is the
//! `B·H·Nq·(dk + 2)` floats the all-reduce below prices.

use crate::fabric::Fabric;
use flat_workloads::AttentionConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How attention work is divided across the chips of a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partition {
    /// Split the `H` heads across chips; every chip sees the full
    /// sequence. The output projection needs the full hidden dimension,
    /// so the shard outputs are all-gathered.
    HeadParallel,
    /// Split the key/value side of the `N²` logit tile across chips
    /// (context parallelism): every chip keeps its FLAT row-tiles of Q
    /// and streams a `seq_kv / p` slice of K/V, so the softmax
    /// row-reduction becomes an all-reduce of running (max, sum,
    /// accumulator) triples.
    SequenceParallel,
    /// Decode-time KV sharding for serving: the cache for one request is
    /// striped across chips, each decode step broadcasts the query and
    /// all-reduces the partial-softmax states.
    KvShard,
}

/// A collective operation a partition requires, priced by a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveOp {
    /// Every chip ends with the elementwise reduction of all inputs.
    AllReduce,
    /// Every chip ends with the concatenation of all shards.
    AllGather,
    /// Every chip ends with its shard of the reduction.
    ReduceScatter,
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollectiveOp::AllReduce => "all-reduce",
            CollectiveOp::AllGather => "all-gather",
            CollectiveOp::ReduceScatter => "reduce-scatter",
        })
    }
}

/// One collective a shard boundary forces: the operation and its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CollectiveCall {
    /// Which collective runs.
    pub op: CollectiveOp,
    /// Payload size in bytes (for an all-gather, the *gathered* size).
    pub bytes: u64,
}

impl CollectiveCall {
    /// Seconds this call takes on `fabric`.
    #[must_use]
    pub fn cost_s(&self, fabric: &Fabric) -> f64 {
        match self.op {
            CollectiveOp::AllReduce => fabric.all_reduce_s(self.bytes),
            CollectiveOp::AllGather => fabric.all_gather_s(self.bytes),
            CollectiveOp::ReduceScatter => fabric.reduce_scatter_s(self.bytes),
        }
    }

    /// Bytes this call pushes through the busiest chip's links on
    /// `fabric` — the traffic the link-energy model charges.
    #[must_use]
    pub fn traversed_bytes(&self, fabric: &Fabric) -> f64 {
        match self.op {
            CollectiveOp::AllReduce => fabric.all_reduce_traversed_bytes(self.bytes),
            CollectiveOp::AllGather | CollectiveOp::ReduceScatter => {
                fabric.all_gather_traversed_bytes(self.bytes)
            }
        }
    }
}

impl fmt::Display for CollectiveCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} of {} B", self.op, self.bytes)
    }
}

impl Partition {
    /// All strategies, for sweeps.
    #[must_use]
    pub const fn all() -> [Partition; 3] {
        [
            Partition::HeadParallel,
            Partition::SequenceParallel,
            Partition::KvShard,
        ]
    }

    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Lists the accepted names on an unknown label.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "head" | "head-parallel" => Ok(Partition::HeadParallel),
            "seq" | "sequence-parallel" => Ok(Partition::SequenceParallel),
            "kv" | "kv-shard" => Ok(Partition::KvShard),
            other => Err(format!("unknown partition {other:?} (head|seq|kv)")),
        }
    }

    /// The workload one chip runs when `cfg` is split `chips` ways.
    ///
    /// Uneven splits model the critical-path chip (ceiling share); more
    /// chips than shardable units leave one unit per chip. With one chip
    /// every strategy returns `cfg` unchanged — the base of the 1-chip
    /// equivalence the tests pin.
    #[must_use]
    pub fn shard_config(&self, cfg: &AttentionConfig, chips: usize) -> AttentionConfig {
        let p = chips.max(1) as u64;
        match self {
            Partition::HeadParallel => {
                let heads = cfg.heads.div_ceil(p).max(1);
                // Per-head width dk is invariant; the shard's hidden
                // dimension follows its head count.
                AttentionConfig::cross_attention(
                    cfg.batch,
                    heads,
                    cfg.seq_q,
                    cfg.seq_kv,
                    heads * cfg.dk(),
                    cfg.ffn_hidden,
                )
                .with_dtype(cfg.dtype)
            }
            Partition::SequenceParallel => AttentionConfig::cross_attention(
                cfg.batch,
                cfg.heads,
                cfg.seq_q,
                cfg.seq_kv.div_ceil(p).max(1),
                cfg.hidden,
                cfg.ffn_hidden,
            )
            .with_dtype(cfg.dtype),
            Partition::KvShard => AttentionConfig::cross_attention(
                cfg.batch,
                cfg.heads,
                1,
                cfg.seq_kv.div_ceil(p).max(1),
                cfg.hidden,
                cfg.ffn_hidden,
            )
            .with_dtype(cfg.dtype),
        }
    }

    /// The collectives one layer pays at this shard boundary (empty for a
    /// single chip — nothing to exchange).
    #[must_use]
    pub fn collectives(&self, cfg: &AttentionConfig, chips: usize) -> Vec<CollectiveCall> {
        if chips <= 1 {
            return Vec::new();
        }
        let elem = cfg.dtype.size_bytes();
        match self {
            // Gather the per-head-group outputs into the full B·Nq·D
            // activation every chip needs for its O-projection shard.
            Partition::HeadParallel => vec![CollectiveCall {
                op: CollectiveOp::AllGather,
                bytes: cfg.batch * cfg.seq_q * cfg.hidden * elem,
            }],
            // Merge partial online-softmax states: per (batch, head,
            // query row) a dk-wide accumulator plus the running (max,
            // sum) pair.
            Partition::SequenceParallel => vec![CollectiveCall {
                op: CollectiveOp::AllReduce,
                bytes: cfg.batch * cfg.heads * cfg.seq_q * (cfg.dk() + 2) * elem,
            }],
            // One decode step: broadcast the query row (modeled as an
            // all-gather of the B·D activation), then merge the partial
            // states for the single query row.
            Partition::KvShard => vec![
                CollectiveCall {
                    op: CollectiveOp::AllGather,
                    bytes: cfg.batch * cfg.hidden * elem,
                },
                CollectiveCall {
                    op: CollectiveOp::AllReduce,
                    bytes: cfg.batch * cfg.heads * (cfg.dk() + 2) * elem,
                },
            ],
        }
    }

    /// Total collective seconds for one layer on `fabric`. Folds from
    /// +0.0 because an empty iterator's `sum()` is -0.0.
    #[must_use]
    pub fn collective_s(&self, cfg: &AttentionConfig, fabric: &Fabric) -> f64 {
        self.collectives(cfg, fabric.chips)
            .iter()
            .map(|c| c.cost_s(fabric))
            .fold(0.0, |a, b| a + b)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Partition::HeadParallel => "head-parallel",
            Partition::SequenceParallel => "sequence-parallel",
            Partition::KvShard => "kv-shard",
        })
    }
}

// Hand-written so JSON carries the canonical display name (the one the
// CLI accepts and the knee tables print) while variant-name
// serializations from earlier snapshots still read back.
impl serde::Serialize for Partition {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl serde::Deserialize for Partition {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => match s.as_str() {
                "HeadParallel" => Ok(Partition::HeadParallel),
                "SequenceParallel" => Ok(Partition::SequenceParallel),
                "KvShard" => Ok(Partition::KvShard),
                other => Partition::by_name(other).map_err(serde::Error::custom),
            },
            _ => Err(serde::Error::custom("expected partition name")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Link, Topology};

    fn cfg() -> AttentionConfig {
        AttentionConfig::self_attention(8, 16, 4096, 1024, 4096)
    }

    #[test]
    fn one_chip_shard_is_the_whole_workload() {
        for p in Partition::all() {
            if p == Partition::KvShard {
                continue; // decode reshapes seq_q by design
            }
            assert_eq!(p.shard_config(&cfg(), 1), cfg(), "{p}");
            assert!(p.collectives(&cfg(), 1).is_empty(), "{p}");
        }
    }

    #[test]
    fn head_parallel_splits_heads_and_hidden_together() {
        let shard = Partition::HeadParallel.shard_config(&cfg(), 4);
        assert_eq!(shard.heads, 4);
        assert_eq!(shard.hidden, 256);
        assert_eq!(shard.dk(), cfg().dk(), "per-head width is invariant");
        assert_eq!(shard.seq_kv, cfg().seq_kv, "full sequence on every chip");
    }

    #[test]
    fn uneven_head_split_models_the_ceiling_chip() {
        let shard = Partition::HeadParallel.shard_config(&cfg(), 3);
        assert_eq!(shard.heads, 6, "ceil(16/3)");
        let over = Partition::HeadParallel.shard_config(&cfg(), 64);
        assert_eq!(over.heads, 1, "never below one head");
    }

    #[test]
    fn sequence_parallel_splits_only_the_kv_side() {
        let shard = Partition::SequenceParallel.shard_config(&cfg(), 8);
        assert_eq!(shard.seq_q, cfg().seq_q, "FLAT row-tiles stay whole");
        assert_eq!(shard.seq_kv, 512);
        assert_eq!(shard.heads, cfg().heads);
    }

    #[test]
    fn kv_shard_is_a_decode_step() {
        let shard = Partition::KvShard.shard_config(&cfg(), 4);
        assert_eq!(shard.seq_q, 1);
        assert_eq!(shard.seq_kv, 1024);
    }

    #[test]
    fn collective_payloads_match_the_tensor_algebra() {
        let c = cfg();
        let elem = c.dtype.size_bytes();
        let head = Partition::HeadParallel.collectives(&c, 8);
        assert_eq!(head.len(), 1);
        assert_eq!(head[0].op, CollectiveOp::AllGather);
        assert_eq!(head[0].bytes, 8 * 4096 * 1024 * elem, "B·Nq·D output");
        let seq = Partition::SequenceParallel.collectives(&c, 8);
        assert_eq!(seq[0].op, CollectiveOp::AllReduce);
        assert_eq!(
            seq[0].bytes,
            8 * 16 * 4096 * (64 + 2) * elem,
            "B·H·Nq·(dk+2) state"
        );
        let kv = Partition::KvShard.collectives(&c, 8);
        assert_eq!(kv.len(), 2, "query broadcast + state merge");
        assert!(
            kv.iter().map(|c| c.bytes).sum::<u64>() < seq[0].bytes,
            "decode is tiny"
        );
    }

    #[test]
    fn collective_seconds_sum_the_calls() {
        let fabric = Fabric::new(8, Topology::Ring, Link::cloud());
        let c = cfg();
        let by_hand: f64 = Partition::KvShard
            .collectives(&c, 8)
            .iter()
            .map(|call| call.cost_s(&fabric))
            .sum();
        assert_eq!(Partition::KvShard.collective_s(&c, &fabric), by_hand);
        let one = Fabric::new(1, Topology::Ring, Link::cloud());
        assert_eq!(Partition::SequenceParallel.collective_s(&c, &one), 0.0);
    }

    #[test]
    fn names_round_trip() {
        for (name, p) in [
            ("head", Partition::HeadParallel),
            ("seq", Partition::SequenceParallel),
            ("kv", Partition::KvShard),
        ] {
            assert_eq!(Partition::by_name(name).unwrap(), p);
        }
        assert!(Partition::by_name("expert").is_err());
    }
}
