//! The numeric witness for sequence-parallel sharding: partial attention
//! per KV shard plus a cross-chip online-softmax merge.
//!
//! The analytical model in [`crate::cost`] *prices* the sequence-parallel
//! all-reduce; this module proves the math it prices is sound. Each chip
//! holds a contiguous `seq_kv / p` slice of K/V and produces, per query
//! row, a [`PartialRow`] — running max `m`, running sum `s`, and the
//! un-normalized `dk`-wide accumulator, built with the very
//! [`OnlineSoftmax`] fold the single-chip streaming kernel uses. The
//! merge rescales every partial into the global max's frame and sums:
//!
//! ```text
//! m  = max_i m_i
//! s  = Σ_i  s_i · exp(m_i − m)
//! o  = Σ_i acc_i · exp(m_i − m)  /  s
//! ```
//!
//! — the same rescale-and-accumulate step `OnlineSoftmax::absorb`
//! performs within a chip, lifted to chip granularity. The property
//! tests pin [`sequence_parallel_attention`] numerically equal to
//! [`flat_kernels::streaming_attention`] for every shard count and
//! shard-boundary split, which is exactly the acceptance criterion.

use flat_kernels::{streaming_attention, Mask, Mat, MultiHeadInput, OnlineSoftmax};

/// The per-query-row state one chip contributes to the cross-chip
/// softmax merge: `(m, s, acc)` — `dk + 2` floats, the payload the
/// sequence-parallel all-reduce in [`crate::partition`] prices.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRow {
    /// Running maximum over this shard's logits.
    pub max: f32,
    /// Running sum of `exp(x − max)` over this shard.
    pub sum: f32,
    /// Un-normalized weighted value accumulator (`dk` wide).
    pub acc: Vec<f32>,
}

impl PartialRow {
    /// The empty state: no logits absorbed yet. Identity for
    /// [`merge_into`] — merging it changes nothing, so chips whose KV
    /// shard is empty (more chips than KV rows) drop out naturally.
    #[must_use]
    pub fn empty(dk: usize) -> Self {
        PartialRow {
            max: f32::NEG_INFINITY,
            sum: 0.0,
            acc: vec![0.0; dk],
        }
    }
}

/// Folds `other` into `into` — the cross-chip reduction operator. It is
/// commutative and associative up to float rounding (the property tests
/// check order-independence within tolerance), so any all-reduce
/// schedule computes it.
pub fn merge_into(into: &mut PartialRow, other: &PartialRow) {
    if other.sum == 0.0 {
        return;
    }
    if into.sum == 0.0 {
        into.max = other.max;
        into.sum = other.sum;
        into.acc.copy_from_slice(&other.acc);
        return;
    }
    let m = into.max.max(other.max);
    let scale_into = (into.max - m).exp();
    let scale_other = (other.max - m).exp();
    into.sum = into.sum * scale_into + other.sum * scale_other;
    for (a, &b) in into.acc.iter_mut().zip(&other.acc) {
        *a = *a * scale_into + b * scale_other;
    }
    into.max = m;
}

/// One chip's partial attention for one query row against its KV shard
/// `[kv_lo, kv_hi)` of group `g`: the [`OnlineSoftmax`] fold over the
/// shard's logits, keeping the accumulator un-normalized.
#[must_use]
pub fn shard_partial_row(
    input: &MultiHeadInput,
    g: usize,
    row: usize,
    kv_lo: usize,
    kv_hi: usize,
) -> PartialRow {
    let q = input.q[g].row(row);
    let scale = input.scale();
    let mut state = OnlineSoftmax::new();
    let mut acc = vec![0.0f32; input.dk];
    for j in kv_lo..kv_hi {
        let k = input.k[g].row(j);
        let x: f32 = q.iter().zip(k).map(|(&a, &b)| a * b).sum::<f32>() * scale;
        // absorb returns the factor that rescales history into the new
        // max's frame — the same contract streaming_attention relies on.
        let rescale = state.absorb(&[x]);
        let w = state.weight(x);
        for (a, &v) in acc.iter_mut().zip(input.v[g].row(j)) {
            *a = *a * rescale + w * v;
        }
    }
    PartialRow {
        max: state.running_max(),
        sum: state.normalizer(),
        acc,
    }
}

/// Splits `seq_kv` into `chips` contiguous shards, ceiling-sized like
/// [`crate::Partition::SequenceParallel`]'s cost model: `[lo, hi)` pairs,
/// trailing shards possibly empty when chips outnumber rows.
#[must_use]
pub fn kv_shards(seq_kv: usize, chips: usize) -> Vec<(usize, usize)> {
    let p = chips.max(1);
    let size = seq_kv.div_ceil(p);
    (0..p)
        .map(|i| {
            let lo = (i * size).min(seq_kv);
            (lo, (lo + size).min(seq_kv))
        })
        .collect()
}

/// Full sequence-parallel attention: every chip computes partial rows
/// over its KV shard, the partials are all-reduced with [`merge_into`],
/// and the merged state normalizes into the final output — numerically
/// the same attention [`streaming_attention`] computes on one chip.
///
/// No mask: splitting the KV side is a long-context *encoder* technique
/// (the paper's Table 1 setting); causal decode shards through
/// [`crate::Partition::KvShard`] instead.
#[must_use]
pub fn sequence_parallel_attention(input: &MultiHeadInput, chips: usize) -> Vec<Mat> {
    let shards = kv_shards(input.seq_kv, chips);
    (0..input.groups())
        .map(|g| {
            let mut out = Mat::zeros(input.seq_q, input.dk);
            for row in 0..input.seq_q {
                let mut merged = PartialRow::empty(input.dk);
                for &(lo, hi) in &shards {
                    let partial = shard_partial_row(input, g, row, lo, hi);
                    merge_into(&mut merged, &partial);
                }
                let norm = merged.sum;
                for (j, &a) in merged.acc.iter().enumerate() {
                    out.set(row, j, a / norm);
                }
            }
            out
        })
        .collect()
}

/// Head-parallel attention: groups (batch × head slices) are dealt
/// round-robin to chips, each chip runs the unmodified streaming kernel
/// on its groups, and the all-gather reassembles the outputs in group
/// order. Communication moves data but never touches values — the
/// identity the head-parallel cost model's zero-recompute assumption
/// rests on.
#[must_use]
pub fn head_parallel_attention(input: &MultiHeadInput, chips: usize) -> Vec<Mat> {
    let p = chips.max(1);
    let mut gathered: Vec<Option<Mat>> = (0..input.groups()).map(|_| None).collect();
    for chip in 0..p {
        // This chip's groups: every p-th, starting at its rank.
        for g in (chip..input.groups()).step_by(p) {
            let shard = MultiHeadInput {
                batch: 1,
                heads: 1,
                seq_q: input.seq_q,
                seq_kv: input.seq_kv,
                dk: input.dk,
                q: vec![input.q[g].clone()],
                k: vec![input.k[g].clone()],
                v: vec![input.v[g].clone()],
            };
            let mut out =
                streaming_attention(&shard, input.seq_q.max(1), input.seq_kv.max(1), Mask::None);
            if let Some(m) = out.pop() {
                gathered[g] = Some(m);
            }
        }
    }
    gathered
        .into_iter()
        .map(|m| m.unwrap_or_else(|| Mat::zeros(input.seq_q, input.dk)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_kernels::naive_attention;

    #[test]
    fn two_shards_match_streaming_reference() {
        let input = MultiHeadInput::random(2, 2, 24, 37, 8, 7);
        let reference = streaming_attention(&input, 8, 16, Mask::None);
        let sharded = sequence_parallel_attention(&input, 2);
        for (r, s) in reference.iter().zip(&sharded) {
            assert!(r.max_abs_diff(s) < 1e-5, "diff {}", r.max_abs_diff(s));
        }
    }

    #[test]
    fn more_chips_than_kv_rows_still_agree() {
        let input = MultiHeadInput::random(1, 1, 4, 3, 5, 11);
        let reference = naive_attention(&input, Mask::None);
        let sharded = sequence_parallel_attention(&input, 8);
        assert!(reference[0].max_abs_diff(&sharded[0]) < 1e-5);
        let shards = kv_shards(3, 8);
        assert_eq!(shards.len(), 8);
        assert!(
            shards[3..].iter().all(|&(lo, hi)| lo == hi),
            "trailing shards empty"
        );
    }

    #[test]
    fn merge_is_order_insensitive() {
        let input = MultiHeadInput::random(1, 1, 1, 30, 6, 3);
        let parts: Vec<PartialRow> = kv_shards(30, 3)
            .iter()
            .map(|&(lo, hi)| shard_partial_row(&input, 0, 0, lo, hi))
            .collect();
        let fold = |order: &[usize]| {
            let mut m = PartialRow::empty(6);
            for &i in order {
                merge_into(&mut m, &parts[i]);
            }
            m
        };
        let a = fold(&[0, 1, 2]);
        let b = fold(&[2, 0, 1]);
        assert!((a.sum - b.sum).abs() < 1e-4 * a.sum.abs());
        for (x, y) in a.acc.iter().zip(&b.acc) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn empty_partial_is_the_merge_identity() {
        let input = MultiHeadInput::random(1, 1, 1, 10, 4, 5);
        let full = shard_partial_row(&input, 0, 0, 0, 10);
        let mut merged = PartialRow::empty(4);
        merge_into(&mut merged, &PartialRow::empty(4));
        merge_into(&mut merged, &full);
        merge_into(&mut merged, &PartialRow::empty(4));
        assert_eq!(merged, full);
    }

    #[test]
    fn head_parallel_is_a_pure_data_movement() {
        let input = MultiHeadInput::random(2, 3, 9, 9, 4, 13);
        let reference = streaming_attention(&input, 9, 9, Mask::None);
        for chips in [1, 2, 4, 16] {
            let sharded = head_parallel_attention(&input, chips);
            assert_eq!(sharded.len(), reference.len());
            for (r, s) in reference.iter().zip(&sharded) {
                assert!(r.max_abs_diff(s) < 1e-6, "chips {chips}");
            }
        }
    }
}
