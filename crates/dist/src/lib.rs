//! # flat-dist — multi-accelerator sharded attention
//!
//! FLAT's dataflow (and every other crate in this workspace) models one
//! accelerator. This crate models what happens when one chip is not
//! enough: a deterministic cluster-level execution model that shards an
//! attention layer across copies of the existing
//! [`flat_arch::Accelerator`] and charges the communication the split
//! forces through a first-class collective cost layer.
//!
//! Three layers, each testable on its own:
//!
//! * [`fabric`] — the wires: ring / 2-D mesh / fully-connected
//!   [`Topology`]s of identical [`Link`]s, with α–β analytical costs for
//!   `all_reduce`, `all_gather`, `reduce_scatter`, and point-to-point KV
//!   transfer, validated against the closed-form ring-allreduce bound.
//! * [`partition`] — the split: a [`Partition`] enum (head-parallel,
//!   sequence-parallel FLAT tiles, KV-shard decode) mapping a workload
//!   to per-chip shards and the exact collective payloads the boundary
//!   costs. The sequence-parallel merge reuses the online-softmax fold,
//!   and [`sharded`] witnesses the math numerically against the
//!   single-chip streaming kernel.
//! * [`cost`] / [`sweep`] — the verdicts: [`DistModel`] composes a shard's
//!   unmodified `flat-core` report with fabric time and link energy
//!   (1 chip is an exact identity with the single-chip model), and
//!   [`Sweep`] re-optimizes the shard dataflow with `flat-dse` at every
//!   chip count × topology × partition point, locating the
//!   [`scaling_knee`].
//!
//! Everything is analytical and deterministic: same inputs, same bytes
//! out — the property `flat dist --json` relies on.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod fabric;
pub mod partition;
pub mod sharded;
pub mod sweep;

pub use cost::{DistModel, DistReport};
pub use fabric::{CollectiveAlgo, Fabric, Link, Topology};
pub use partition::{CollectiveCall, CollectiveOp, Partition};
pub use sharded::{
    head_parallel_attention, kv_shards, merge_into, sequence_parallel_attention, shard_partial_row,
    PartialRow,
};
pub use sweep::{best_joint, scaling_knee, series, Sweep, SweepPoint, KNEE_RATIO};
