//! Cluster design-space sweeps: chip count × topology × collective
//! algorithm × partition, with the per-shard dataflow re-optimized by
//! `flat-dse` at every cluster size.
//!
//! The interesting question a sweep answers is *where scaling stops
//! paying*: compute shrinks like `1/p` while ring collectives grow like
//! `(p−1)`, so every (topology, algorithm, partition) series has a knee.
//! The [`scaling_knee`] rule makes that operational — the largest chip
//! count whose step still delivers at least [`KNEE_RATIO`]× the previous
//! point's speedup (a 2× step delivering < 1.25× is past the knee).
//!
//! The dataflow is *searched per shard shape*, not fixed: a 64K-sequence
//! layer split 8 ways presents a different `N²` tile than the whole
//! layer, and the best FLAT granularity moves with it. Reusing
//! [`Dse::best_at_scope`] here is the outward integration the crate owes
//! `flat-dse` — the same optimizer, pointed at sharded workloads. The
//! fabric side of the joint search is pure re-pricing: topology,
//! collective algorithm, and overlap change what the wires cost, never
//! the shard shape, so one dataflow search per (partition, chip count)
//! covers the whole fabric cross-product ([`best_joint`] then picks the
//! winner — the `flat dse --space collective` surface).

use crate::cost::{DistModel, DistReport};
use crate::fabric::{CollectiveAlgo, Fabric, Link, Topology};
use crate::partition::Partition;
use flat_arch::Accelerator;
use flat_dse::{Dse, Objective, SpaceKind};
use flat_workloads::{AttentionBlock, AttentionConfig, Scope};
use serde::{Deserialize, Serialize};

/// Minimum incremental speedup ratio between consecutive sweep points
/// for scaling to count as "still paying".
pub const KNEE_RATIO: f64 = 1.25;

/// One evaluated cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Chips in the cluster.
    pub chips: usize,
    /// Fabric topology.
    pub topology: Topology,
    /// Collective schedule on the wires.
    pub algo: CollectiveAlgo,
    /// Sharding strategy.
    pub partition: Partition,
    /// Label of the per-shard dataflow the search picked (`FLAT-R64`, …).
    pub dataflow: String,
    /// Modeled shard compute milliseconds.
    pub compute_ms: f64,
    /// Modeled collective milliseconds (fabric busy time).
    pub collective_ms: f64,
    /// Collective milliseconds on the critical path — equal to
    /// `collective_ms` under serial pricing, the uncovered remainder
    /// under overlap pricing.
    pub exposed_ms: f64,
    /// Modeled end-to-end milliseconds (compute + exposed collectives).
    pub total_ms: f64,
    /// Fraction of the total stalled on the fabric.
    pub fabric_fraction: f64,
    /// Total cluster energy in millijoules (all chips + links).
    pub energy_mj: f64,
    /// Speedup over the 1-chip point of the same partition.
    pub speedup: f64,
}

impl SweepPoint {
    fn from_report(
        topology: Topology,
        algo: CollectiveAlgo,
        partition: Partition,
        dataflow: String,
        r: &DistReport,
        base_total_s: f64,
    ) -> Self {
        let total = r.total_s();
        SweepPoint {
            chips: r.chips,
            topology,
            algo,
            partition,
            dataflow,
            compute_ms: r.compute_s * 1e3,
            collective_ms: r.collective_s * 1e3,
            exposed_ms: r.exposed_s * 1e3,
            total_ms: total * 1e3,
            fabric_fraction: r.fabric_fraction(),
            energy_mj: r.total_pj() * 1e-9,
            speedup: if total > 0.0 {
                base_total_s / total
            } else {
                1.0
            },
        }
    }
}

/// A cluster sweep: the accelerator type, link class, collective
/// schedules, and search settings shared by every point.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// The per-chip accelerator.
    pub accel: Accelerator,
    /// The inter-chip link class.
    pub link: Link,
    /// Design space the per-shard dataflow search explores.
    pub space: SpaceKind,
    /// Objective the search optimizes.
    pub objective: Objective,
    /// Collective algorithms to price every fabric with.
    pub algos: Vec<CollectiveAlgo>,
    /// Whether collective rounds overlap compute (tick cost
    /// `max(compute, collective)`) or serialize after it.
    pub overlap: bool,
}

impl Sweep {
    /// A sweep over `accel` clusters joined by `link`, searching the full
    /// space for maximum utilization (the paper's headline objective),
    /// pricing the ring collective schedule serially — the PR 4 baseline.
    #[must_use]
    pub fn new(accel: Accelerator, link: Link) -> Self {
        Sweep {
            accel,
            link,
            space: SpaceKind::Full,
            objective: Objective::MaxUtil,
            algos: vec![CollectiveAlgo::Ring],
            overlap: false,
        }
    }

    /// The same sweep pricing a different set of collective algorithms.
    #[must_use]
    pub fn with_algos(mut self, algos: Vec<CollectiveAlgo>) -> Self {
        self.algos = algos;
        self
    }

    /// The same sweep with overlap pricing switched.
    #[must_use]
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Evaluates every chip count × topology × algorithm × partition
    /// combination.
    ///
    /// The shard dataflow search runs once per (partition, chip count) —
    /// the fabric cross-product changes collective price, never shard
    /// shape — and each partition's speedups are normalized to its own
    /// 1-chip point (computed even when `1` is not in `chips`).
    #[must_use]
    pub fn run(
        &self,
        cfg: &AttentionConfig,
        chips: &[usize],
        topologies: &[Topology],
        partitions: &[Partition],
    ) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for &partition in partitions {
            let (_, base) = self.searched_shard(cfg, partition, 1);
            let base_total_s = self.accel.cycles_to_seconds(base.cycles);
            for &p in chips {
                let (label, shard) = self.searched_shard(cfg, partition, p);
                for &topology in topologies {
                    for &algo in &self.algos {
                        let model = DistModel::new(
                            self.accel.clone(),
                            Fabric::new(p, topology, self.link).with_algo(algo),
                            partition,
                        )
                        .with_overlap(self.overlap);
                        let report = model.report_for(cfg, shard);
                        points.push(SweepPoint::from_report(
                            topology,
                            algo,
                            partition,
                            label.clone(),
                            &report,
                            base_total_s,
                        ));
                    }
                }
            }
        }
        points
    }

    /// Best dataflow + cost for one shard shape.
    fn searched_shard(
        &self,
        cfg: &AttentionConfig,
        partition: Partition,
        chips: usize,
    ) -> (String, flat_core::CostReport) {
        let shard_cfg = partition.shard_config(cfg, chips);
        let block = AttentionBlock::new(shard_cfg);
        let (df, report) = Dse::new(&self.accel, &block).best_at_scope(
            self.space,
            Scope::LogitAttend,
            self.objective,
        );
        (df.label(), report)
    }
}

/// Extracts one (topology, algorithm, partition) series from sweep
/// output, sorted by chip count — the unit [`scaling_knee`] judges.
#[must_use]
pub fn series(
    points: &[SweepPoint],
    topology: Topology,
    algo: CollectiveAlgo,
    partition: Partition,
) -> Vec<SweepPoint> {
    let mut s: Vec<SweepPoint> = points
        .iter()
        .filter(|p| p.topology == topology && p.algo == algo && p.partition == partition)
        .cloned()
        .collect();
    s.sort_by_key(|p| p.chips);
    s
}

/// The joint (partition × topology × collective-algorithm) verdict at
/// one chip count: the point with the smallest end-to-end time, ties
/// broken deterministically by the stable order the sweep emitted.
/// `None` when no point matches `chips`.
#[must_use]
pub fn best_joint(points: &[SweepPoint], chips: usize) -> Option<&SweepPoint> {
    points.iter().filter(|p| p.chips == chips).min_by(|a, b| {
        a.total_ms
            .partial_cmp(&b.total_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// The scaling knee of one series: the largest chip count still earning
/// its step. Walking the series in increasing chip count, the knee is
/// the last point whose speedup is at least [`KNEE_RATIO`] × the
/// previous point's; the first under-delivering step ends the walk.
/// Returns the first point's chip count for a one-point (or
/// immediately-stalling) series, and `None` for an empty one.
#[must_use]
pub fn scaling_knee(sorted_series: &[SweepPoint]) -> Option<usize> {
    let first = sorted_series.first()?;
    let mut knee = first.chips;
    let mut prev = first.speedup;
    for p in &sorted_series[1..] {
        if prev > 0.0 && p.speedup >= KNEE_RATIO * prev {
            knee = p.chips;
            prev = p.speedup;
        } else {
            break;
        }
    }
    Some(knee)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> Vec<SweepPoint> {
        let cfg = AttentionConfig::self_attention(4, 16, 4096, 1024, 4096);
        Sweep::new(Accelerator::cloud(), Link::cloud()).run(
            &cfg,
            &[1, 2, 4, 8],
            &[Topology::Ring, Topology::FullyConnected],
            &[Partition::HeadParallel],
        )
    }

    #[test]
    fn one_chip_points_have_unit_speedup_and_no_fabric() {
        let points = small_sweep();
        for p in points.iter().filter(|p| p.chips == 1) {
            assert!((p.speedup - 1.0).abs() < 1e-12, "{p:?}");
            assert_eq!(p.collective_ms, 0.0);
            assert_eq!(p.exposed_ms, 0.0);
            assert_eq!(p.fabric_fraction, 0.0);
        }
    }

    #[test]
    fn head_parallel_scales_on_a_cloud_link() {
        let points = small_sweep();
        let ring = series(
            &points,
            Topology::Ring,
            CollectiveAlgo::Ring,
            Partition::HeadParallel,
        );
        assert_eq!(ring.len(), 4);
        assert!(ring.windows(2).all(|w| w[0].chips < w[1].chips), "sorted");
        let at8 = &ring[3];
        assert!(at8.speedup > 2.0, "8 chips must beat 2x: {}", at8.speedup);
        assert!(at8.collective_ms > 0.0);
        assert_eq!(
            at8.exposed_ms, at8.collective_ms,
            "serial pricing exposes everything"
        );
    }

    #[test]
    fn fully_connected_never_loses_to_the_ring() {
        let points = small_sweep();
        let ring = series(
            &points,
            Topology::Ring,
            CollectiveAlgo::Ring,
            Partition::HeadParallel,
        );
        let fc = series(
            &points,
            Topology::FullyConnected,
            CollectiveAlgo::Ring,
            Partition::HeadParallel,
        );
        for (r, f) in ring.iter().zip(&fc) {
            assert_eq!(r.chips, f.chips);
            assert!(f.total_ms <= r.total_ms + 1e-12, "chips {}", r.chips);
            assert_eq!(r.compute_ms, f.compute_ms, "topology never changes compute");
        }
    }

    #[test]
    fn overlap_sweep_never_loses_to_serial_and_best_joint_picks_the_min() {
        let cfg = AttentionConfig::self_attention(4, 16, 4096, 1024, 4096);
        let chips = [1usize, 8];
        let topos = [Topology::Ring, Topology::Torus2d];
        let parts = [Partition::HeadParallel];
        let serial = Sweep::new(Accelerator::cloud(), Link::cloud())
            .with_algos(CollectiveAlgo::all().to_vec());
        let overlapped = serial.clone().with_overlap(true);
        let s = serial.run(&cfg, &chips, &topos, &parts);
        let o = overlapped.run(&cfg, &chips, &topos, &parts);
        assert_eq!(s.len(), o.len());
        for (a, b) in s.iter().zip(&o) {
            assert_eq!((a.chips, a.topology, a.algo), (b.chips, b.topology, b.algo));
            assert!(b.total_ms <= a.total_ms + 1e-12, "overlap can only help");
            assert_eq!(a.collective_ms, b.collective_ms, "busy time is identical");
            assert!(b.exposed_ms <= a.exposed_ms + 1e-12);
        }
        let best = best_joint(&o, 8).expect("points at 8 chips");
        assert!(o
            .iter()
            .filter(|p| p.chips == 8)
            .all(|p| best.total_ms <= p.total_ms));
        assert!(best_joint(&o, 3).is_none());
    }

    #[test]
    fn knee_walks_until_a_step_stalls() {
        let mk = |chips: usize, speedup: f64| SweepPoint {
            chips,
            topology: Topology::Ring,
            algo: CollectiveAlgo::Ring,
            partition: Partition::HeadParallel,
            dataflow: String::new(),
            compute_ms: 1.0,
            collective_ms: 0.0,
            exposed_ms: 0.0,
            total_ms: 1.0,
            fabric_fraction: 0.0,
            energy_mj: 0.0,
            speedup,
        };
        // 1 -> 2 earns (2.0x), 2 -> 4 earns (1.6x), 4 -> 8 stalls (1.1x).
        let s = vec![mk(1, 1.0), mk(2, 2.0), mk(4, 3.2), mk(8, 3.5)];
        assert_eq!(scaling_knee(&s), Some(4));
        assert_eq!(scaling_knee(&s[..1]), Some(1));
        assert_eq!(scaling_knee(&[]), None);
        // Every step earning: the knee is the end of the series.
        let all = vec![mk(1, 1.0), mk(2, 1.9), mk(4, 3.6)];
        assert_eq!(scaling_knee(&all), Some(4));
    }

    #[test]
    fn sweep_output_serializes() {
        let points = small_sweep();
        let json = serde_json::to_string(&points).unwrap();
        let back: Vec<SweepPoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(points, back);
    }
}
