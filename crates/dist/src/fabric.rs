//! The inter-chip fabric: topologies, links, collective algorithms, and
//! analytical collective costs.
//!
//! The on-chip [`flat_arch::Noc`] model stops at the chip boundary; this
//! module picks up from there. A [`Fabric`] is `chips` identical
//! accelerators joined by identical [`Link`]s in one of five
//! [`Topology`] shapes, running one of three [`CollectiveAlgo`]
//! schedules. Every collective a sharded attention execution needs —
//! `all_reduce`, `all_gather`, `reduce_scatter`, and point-to-point KV
//! transfer — is priced with the standard α–β model (per-message latency
//! `α` seconds, bandwidth `β` bytes/s per link).
//!
//! # Topologies
//!
//! * **Ring** — a bidirectional ring (TPU-pod-slice style). The
//!   bandwidth-optimal ring algorithms apply directly: a reduce-scatter
//!   or all-gather makes `p−1` steps each moving `n/p` bytes, so
//!   `T = (p−1)·(α + n/(p·β))`, and an all-reduce is the two chained,
//!   `T = 2·(p−1)·(α + n/(p·β))` — the closed form the tests pin.
//! * **2-D mesh** — near-square grid *without* wraparound links. Phases
//!   run dimension-ordered (rows then columns), but each 1-D phase is an
//!   *open chain*: the ring schedule needs a Hamiltonian cycle the chain
//!   does not have. The best embedding of a logical ring on a line
//!   (snake out through the even nodes, return through the odd) has
//!   dilation 2 and congestion 2, so every open-chain step with 3+ chips
//!   pays twice the ring step's latency and bandwidth. A 2-chip chain
//!   *is* a 2-ring, and prime chip counts degenerate to a single `1 × p`
//!   open chain.
//! * **2-D torus** — the same near-square grid *with* wraparound links;
//!   each dimension-ordered phase is a true ring.
//! * **Fully connected** — every pair of chips has a dedicated link
//!   (NVLink-switch style), so the direct one-step algorithms apply:
//!   each chip exchanges `n/p` shards with all peers concurrently,
//!   `T = α + n/(p·β)` per phase.
//! * **Tree** — an implicit complete binary tree (chip `i`'s parent is
//!   `(i−1)/2`). The ring schedule embeds via DFS order at
//!   dilation/congestion 2 like the open chain; the halving-doubling
//!   schedule maps onto sibling-subtree merges (2 hops per round,
//!   congestion-free) and is the natural fit.
//!
//! # Collective algorithms
//!
//! * **Ring** ([`CollectiveAlgo::Ring`]) — the pipelined ring schedules
//!   above, embedded per topology.
//! * **Recursive halving-doubling** ([`CollectiveAlgo::HalvingDoubling`])
//!   — `log2(p)` rounds per phase: round `k` exchanges `n/2^k` bytes
//!   with the partner `p/2^k` ranks away, so an all-reduce makes
//!   `2·log2(p)` steps at power-of-two chip counts. On low-diameter
//!   fabrics (fully connected, tree) the latency term collapses from
//!   `O(p)` to `O(log p)`; on rings/meshes the partner distance is paid
//!   in hops and congestion, so halving-doubling never beats the ring
//!   there. Non-power-of-two chip counts fall back to the ring schedule
//!   on the same topology.
//! * **Bucket** ([`CollectiveAlgo::Bucket`]) — the 2-D shard-through
//!   all-reduce for meshes/tori: reduce-scatter along rows (`n` over the
//!   row), all-reduce only the `n/cols` shard along columns, all-gather
//!   back along rows. Strictly cheaper than the dimension-ordered ring
//!   all-reduce whenever both dimensions are non-trivial; degenerates to
//!   the ring schedule on 1-D and fully-connected fabrics.
//!
//! All costs are *symmetric in participant order* (a collective over
//! `{0,1,2}` costs what one over `{2,0,1}` costs — the schedule embeds a
//! logical ring over the participant set) and *monotone in message
//! size*. The property tests in `tests/prop.rs` hold this across every
//! topology × algorithm pair, along with the `reduce_scatter +
//! all_gather == all_reduce` identity on rings and the halving-doubling
//! step counts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How the chips are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A bidirectional ring (TPU-pod-slice style, degree 2).
    Ring,
    /// A near-square 2-D mesh without wraparound links.
    Mesh2d,
    /// A near-square 2-D torus: the mesh plus wraparound links.
    Torus2d,
    /// A dedicated link between every pair of chips (NVLink-switch
    /// style).
    FullyConnected,
    /// An implicit complete binary tree (chip `i`'s parent is `(i-1)/2`).
    Tree,
}

impl Topology {
    /// All topologies, for sweeps.
    #[must_use]
    pub const fn all() -> [Topology; 5] {
        [
            Topology::Ring,
            Topology::Mesh2d,
            Topology::Torus2d,
            Topology::FullyConnected,
            Topology::Tree,
        ]
    }

    /// Accepted (lowercase) CLI spellings; the first entry is the
    /// canonical `Display` name, so serialized names always round-trip
    /// through [`by_name`](Self::by_name).
    #[must_use]
    pub const fn names(self) -> &'static [&'static str] {
        match self {
            Topology::Ring => &["ring"],
            Topology::Mesh2d => &["mesh", "mesh2d"],
            Topology::Torus2d => &["torus", "torus2d"],
            Topology::FullyConnected => &["fully-connected", "fc"],
            Topology::Tree => &["tree"],
        }
    }

    /// Parses the CLI spelling, case-insensitively. Every `Display` name
    /// is accepted, so `by_name(&t.to_string())` round-trips.
    ///
    /// # Errors
    ///
    /// Lists the accepted names (generated from [`Topology::all`], so the
    /// list cannot go stale) on an unknown label.
    pub fn by_name(name: &str) -> Result<Self, String> {
        let lower = name.trim().to_ascii_lowercase();
        for t in Topology::all() {
            if t.names().contains(&lower.as_str()) {
                return Ok(t);
            }
        }
        let accepted: Vec<&str> = Topology::all()
            .iter()
            .flat_map(|t| t.names().iter().copied())
            .collect();
        Err(format!(
            "unknown topology {name:?} (accepted: {})",
            accepted.join("|")
        ))
    }

    /// The near-square `(rows, cols)` factorization of `chips` used by the
    /// mesh and torus: the largest divisor pair with `rows <= cols`. Prime
    /// chip counts degenerate to a `1 × p` grid — a single open chain on
    /// the mesh, a single ring on the torus.
    #[must_use]
    pub fn mesh_dims(chips: usize) -> (usize, usize) {
        let p = chips.max(1);
        let mut rows = 1;
        let mut d = 1;
        while d * d <= p {
            if p.is_multiple_of(d) {
                rows = d;
            }
            d += 1;
        }
        (rows, p / rows)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.names()[0])
    }
}

// Hand-written so JSON carries the canonical display name ("ring",
// "fully-connected", …) — the same spelling `by_name` and the knee
// tables use — while PR 4-era variant-name serializations ("Ring",
// "Mesh2d", "FullyConnected") still read back.
impl serde::Serialize for Topology {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl serde::Deserialize for Topology {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => match s.as_str() {
                "Ring" => Ok(Topology::Ring),
                "Mesh2d" => Ok(Topology::Mesh2d),
                "Torus2d" => Ok(Topology::Torus2d),
                "FullyConnected" => Ok(Topology::FullyConnected),
                "Tree" => Ok(Topology::Tree),
                other => Topology::by_name(other).map_err(serde::Error::custom),
            },
            _ => Err(serde::Error::custom("expected topology name")),
        }
    }
}

/// Which collective schedule the fabric runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectiveAlgo {
    /// Pipelined ring reduce-scatter/all-gather, embedded per topology.
    #[default]
    Ring,
    /// Recursive halving (reduce-scatter) + recursive doubling
    /// (all-gather): `log2(p)` rounds per phase at power-of-two chip
    /// counts, ring fallback elsewhere.
    HalvingDoubling,
    /// The 2-D shard-through all-reduce for meshes/tori (reduce-scatter
    /// rows → all-reduce shard along columns → all-gather rows); ring
    /// elsewhere.
    Bucket,
}

impl CollectiveAlgo {
    /// All algorithms, for sweeps.
    #[must_use]
    pub const fn all() -> [CollectiveAlgo; 3] {
        [
            CollectiveAlgo::Ring,
            CollectiveAlgo::HalvingDoubling,
            CollectiveAlgo::Bucket,
        ]
    }

    /// Accepted (lowercase) CLI spellings; the first is the canonical
    /// `Display` name.
    #[must_use]
    pub const fn names(self) -> &'static [&'static str] {
        match self {
            CollectiveAlgo::Ring => &["ring"],
            CollectiveAlgo::HalvingDoubling => &["hd", "halving-doubling"],
            CollectiveAlgo::Bucket => &["bucket"],
        }
    }

    /// Parses the CLI spelling, case-insensitively.
    ///
    /// # Errors
    ///
    /// Lists the accepted names (generated from [`CollectiveAlgo::all`])
    /// on an unknown label.
    pub fn by_name(name: &str) -> Result<Self, String> {
        let lower = name.trim().to_ascii_lowercase();
        for a in CollectiveAlgo::all() {
            if a.names().contains(&lower.as_str()) {
                return Ok(a);
            }
        }
        let accepted: Vec<&str> = CollectiveAlgo::all()
            .iter()
            .flat_map(|a| a.names().iter().copied())
            .collect();
        Err(format!(
            "unknown collective algorithm {name:?} (accepted: {})",
            accepted.join("|")
        ))
    }
}

impl fmt::Display for CollectiveAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.names()[0])
    }
}

// Hand-written for the same display-name JSON as `Topology`.
impl serde::Serialize for CollectiveAlgo {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

// Hand-written so pre-algo serializations (PR 4 era `Fabric` /
// `SweepPoint` JSON, where the field is absent and reads back as null)
// default to the ring schedule instead of erroring.
impl serde::Deserialize for CollectiveAlgo {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(CollectiveAlgo::default()),
            serde::Value::String(s) => match s.as_str() {
                "Ring" => Ok(CollectiveAlgo::Ring),
                "HalvingDoubling" => Ok(CollectiveAlgo::HalvingDoubling),
                "Bucket" => Ok(CollectiveAlgo::Bucket),
                other => CollectiveAlgo::by_name(other).map_err(serde::Error::custom),
            },
            _ => Err(serde::Error::custom("expected collective algorithm name")),
        }
    }
}

/// One inter-chip link: α–β cost parameters plus a per-byte transfer
/// energy for the energy roll-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per second (per direction).
    pub bytes_per_s: f64,
    /// Per-message (per-hop) latency in seconds.
    pub latency_s: f64,
    /// Energy per byte moved across the link, in picojoules. Inter-chip
    /// SerDes costs an order of magnitude more than DRAM access —
    /// ~10 pJ/bit ≈ 80 pJ/B is the commonly quoted class.
    pub pj_per_byte: f64,
}

impl Link {
    /// A 300 GB/s, 1 µs, 80 pJ/B link — the NVLink/ICI class that pairs
    /// with the cloud accelerator preset.
    #[must_use]
    pub fn cloud() -> Self {
        Link {
            bytes_per_s: 300.0e9,
            latency_s: 1.0e-6,
            pj_per_byte: 80.0,
        }
    }

    /// A 25 GB/s, 2 µs PCIe-class link for edge clusters.
    #[must_use]
    pub fn edge() -> Self {
        Link {
            bytes_per_s: 25.0e9,
            latency_s: 2.0e-6,
            pj_per_byte: 80.0,
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} GB/s, {:.1} us/hop",
            self.bytes_per_s / 1e9,
            self.latency_s * 1e6
        )
    }
}

/// Time and per-chip link traffic of one priced collective: the planner
/// derives both from the same step structure so the latency and energy
/// models cannot drift apart.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseCost {
    /// Seconds on the critical path.
    s: f64,
    /// Bytes each chip pushes through its links (counted once per link
    /// traversed, so a dilation-2 embedding charges double).
    traversed: f64,
}

impl PhaseCost {
    const ZERO: PhaseCost = PhaseCost {
        s: 0.0,
        traversed: 0.0,
    };

    fn plus(self, other: PhaseCost) -> PhaseCost {
        PhaseCost {
            s: self.s + other.s,
            traversed: self.traversed + other.traversed,
        }
    }
}

/// How far apart halving-doubling partners sit on the physical fabric.
#[derive(Clone, Copy)]
enum HdHops {
    /// Dedicated links: every partner is 1 hop away, congestion-free.
    Direct,
    /// A 1-D chain/ring: a partner `d` ranks away is `d` hops away, and
    /// the `d` concurrent pair-messages of that round share each link.
    Chain,
    /// Sibling-subtree merge on the binary tree: representatives meet
    /// through a common parent (2 hops), on link-disjoint paths.
    Tree,
}

/// A cluster fabric: `chips` accelerators joined by identical [`Link`]s
/// in a [`Topology`], running a [`CollectiveAlgo`] schedule.
///
/// # Example
///
/// ```
/// use flat_dist::{Fabric, Link, Topology};
///
/// let ring = Fabric::new(8, Topology::Ring, Link::cloud());
/// let fc = Fabric::new(8, Topology::FullyConnected, Link::cloud());
/// let n = 64 * 1024 * 1024;
/// // Same bytes, same links: the fully-connected fabric finishes an
/// // all-reduce faster than the ring's 2(p-1) steps.
/// assert!(fc.all_reduce_s(n) < ring.all_reduce_s(n));
/// // One chip needs no communication at all.
/// assert_eq!(Fabric::new(1, Topology::Ring, Link::cloud()).all_reduce_s(n), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    /// Number of accelerators in the cluster.
    pub chips: usize,
    /// How they are wired.
    pub topology: Topology,
    /// The per-link cost parameters.
    pub link: Link,
    /// Which collective schedule runs on the wires.
    pub algo: CollectiveAlgo,
}

impl Fabric {
    /// A fabric of `chips` chips running the ring collective schedule. A
    /// single chip is legal (every collective costs zero) so one cost
    /// model covers the whole sweep.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or the link parameters are not positive
    /// and finite.
    #[must_use]
    pub fn new(chips: usize, topology: Topology, link: Link) -> Self {
        assert!(chips > 0, "a fabric needs at least one chip");
        assert!(
            link.bytes_per_s > 0.0 && link.bytes_per_s.is_finite(),
            "link bandwidth must be positive"
        );
        assert!(
            link.latency_s >= 0.0 && link.latency_s.is_finite(),
            "link latency must be non-negative"
        );
        Fabric {
            chips,
            topology,
            link,
            algo: CollectiveAlgo::Ring,
        }
    }

    /// The same fabric running a different collective schedule.
    #[must_use]
    pub fn with_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// One dimension-ordered phase on a 1-D chain of `q` chips: `steps`
    /// steps each moving `bytes_per_step`. With a wraparound link (or
    /// only 2 chips, where the chain *is* a 2-ring) this is the plain
    /// ring step cost; an open chain of 3+ chips runs the ring schedule
    /// through the dilation-2/congestion-2 snake embedding and pays
    /// double per step.
    fn chain_phase(&self, q: usize, wrap: bool, steps: usize, bytes_per_step: f64) -> PhaseCost {
        let factor = if wrap || q <= 2 { 1.0 } else { 2.0 };
        PhaseCost {
            s: steps as f64
                * factor
                * (self.link.latency_s + bytes_per_step / self.link.bytes_per_s),
            traversed: steps as f64 * factor * bytes_per_step,
        }
    }

    /// One direct phase on the fully-connected fabric: each chip
    /// exchanges a `shard` with all `p-1` peers concurrently over
    /// dedicated links.
    fn direct_phase(&self, p: usize, shard: f64) -> PhaseCost {
        PhaseCost {
            s: self.link.latency_s + shard / self.link.bytes_per_s,
            traversed: (p - 1) as f64 * shard,
        }
    }

    /// One direction of the recursive halving-doubling schedule over `q`
    /// (power-of-two) participants and `n` total bytes: `log2(q)` rounds,
    /// round `k` moving `n/2^k` to the partner `q/2^k` ranks away. The
    /// mirrored direction (doubling) moves the same message multiset over
    /// the same distances, so a full all-reduce is exactly twice this.
    fn hd_half(&self, n: f64, q: usize, hops: HdHops) -> PhaseCost {
        let mut out = PhaseCost::ZERO;
        let mut d = q / 2;
        let mut msg = n / 2.0;
        while d >= 1 {
            let (lat_hops, congestion) = match hops {
                HdHops::Direct => (1.0, 1.0),
                HdHops::Chain => (d as f64, d as f64),
                HdHops::Tree => (2.0, 1.0),
            };
            out.s += lat_hops * self.link.latency_s + congestion * msg / self.link.bytes_per_s;
            out.traversed += lat_hops * msg;
            d /= 2;
            msg /= 2.0;
        }
        out
    }

    /// The halving-doubling hop model for this topology's 1-D phases.
    fn hd_hops(&self) -> HdHops {
        match self.topology {
            Topology::FullyConnected => HdHops::Direct,
            Topology::Tree => HdHops::Tree,
            Topology::Ring | Topology::Mesh2d | Topology::Torus2d => HdHops::Chain,
        }
    }

    /// Whether halving-doubling applies at this chip count; otherwise
    /// the fabric falls back to the ring schedule.
    fn hd_applies(p: usize) -> bool {
        p.is_power_of_two()
    }

    /// Priced all-reduce of `bytes` over `p` participants (each chip
    /// starts and ends with the full vector).
    fn plan_all_reduce(&self, bytes: u64, p: usize) -> PhaseCost {
        if p <= 1 {
            return PhaseCost::ZERO;
        }
        let n = bytes as f64;
        match self.algo {
            CollectiveAlgo::Ring => self.ring_all_reduce(n, p),
            CollectiveAlgo::HalvingDoubling => {
                if !Self::hd_applies(p) {
                    return self.ring_all_reduce(n, p);
                }
                match self.topology {
                    Topology::Ring | Topology::FullyConnected | Topology::Tree => {
                        let half = self.hd_half(n, p, self.hd_hops());
                        half.plus(half)
                    }
                    // Dimension-ordered like the ring schedule: a full
                    // halving-doubling all-reduce along rows, then along
                    // columns.
                    Topology::Mesh2d | Topology::Torus2d => {
                        let (r, c) = Topology::mesh_dims(p);
                        let rows = self.hd_half(n, c, HdHops::Chain);
                        let cols = self.hd_half(n, r, HdHops::Chain);
                        rows.plus(rows).plus(cols).plus(cols)
                    }
                }
            }
            CollectiveAlgo::Bucket => match self.topology {
                // Shard-through: reduce-scatter the full vector along
                // rows, all-reduce only the n/c shard along columns,
                // all-gather back along rows.
                Topology::Mesh2d | Topology::Torus2d => {
                    let (r, c) = Topology::mesh_dims(p);
                    if r <= 1 || c <= 1 {
                        return self.ring_all_reduce(n, p);
                    }
                    let wrap = self.topology == Topology::Torus2d;
                    let row = self.chain_phase(c, wrap, c - 1, n / c as f64);
                    let col = self.chain_phase(r, wrap, 2 * (r - 1), n / (r * c) as f64);
                    row.plus(col).plus(row)
                }
                _ => self.ring_all_reduce(n, p),
            },
        }
    }

    /// Priced all-gather whose *gathered* size is `bytes` (each of the
    /// `p` participants contributes `bytes / p`).
    fn plan_all_gather(&self, bytes: u64, p: usize) -> PhaseCost {
        if p <= 1 {
            return PhaseCost::ZERO;
        }
        let n = bytes as f64;
        match self.algo {
            // The bucket optimization is the reduce+gather round trip;
            // a lone gather has nothing to shard through, so it runs the
            // ring schedule.
            CollectiveAlgo::Ring | CollectiveAlgo::Bucket => self.ring_all_gather(n, p),
            CollectiveAlgo::HalvingDoubling => {
                if !Self::hd_applies(p) {
                    return self.ring_all_gather(n, p);
                }
                match self.topology {
                    Topology::Ring | Topology::FullyConnected | Topology::Tree => {
                        self.hd_half(n, p, self.hd_hops())
                    }
                    // Gather within rows (each row assembles its n/r
                    // slice), then across columns.
                    Topology::Mesh2d | Topology::Torus2d => {
                        let (r, c) = Topology::mesh_dims(p);
                        self.hd_half(n / r as f64, c, HdHops::Chain)
                            .plus(self.hd_half(n, r, HdHops::Chain))
                    }
                }
            }
        }
    }

    /// The ring schedule's all-reduce, embedded per topology.
    fn ring_all_reduce(&self, n: f64, p: usize) -> PhaseCost {
        match self.topology {
            // Reduce-scatter then all-gather: 2(p-1) steps of n/p each.
            Topology::Ring => self.chain_phase(p, true, 2 * (p - 1), n / p as f64),
            // Ring all-reduce along rows (full vector), then along
            // columns: after the row phase every chip of a row holds the
            // row sum, so the column phase completes the global sum.
            // Mesh rows/columns are open chains; torus rows/columns wrap.
            Topology::Mesh2d | Topology::Torus2d => {
                let wrap = self.topology == Topology::Torus2d;
                let (r, c) = Topology::mesh_dims(p);
                self.chain_phase(c, wrap, 2 * (c - 1), n / c as f64)
                    .plus(self.chain_phase(r, wrap, 2 * (r - 1), n / r as f64))
            }
            // Direct reduce-scatter + all-gather over dedicated links:
            // each chip exchanges its n/p shard with all peers at once.
            Topology::FullyConnected => {
                let d = self.direct_phase(p, n / p as f64);
                d.plus(d)
            }
            // DFS-order ring embedding on the tree: an open-chain-priced
            // ring schedule (dilation/congestion 2).
            Topology::Tree => self.chain_phase(p, false, 2 * (p - 1), n / p as f64),
        }
    }

    /// The ring schedule's all-gather, embedded per topology.
    fn ring_all_gather(&self, n: f64, p: usize) -> PhaseCost {
        let shard = n / p as f64;
        match self.topology {
            Topology::Ring => self.chain_phase(p, true, p - 1, shard),
            // Gather along rows (shards of size n/p), then along columns
            // (each column step moves a whole gathered row, c shards).
            Topology::Mesh2d | Topology::Torus2d => {
                let wrap = self.topology == Topology::Torus2d;
                let (r, c) = Topology::mesh_dims(p);
                self.chain_phase(c, wrap, c - 1, shard)
                    .plus(self.chain_phase(r, wrap, r - 1, shard * c as f64))
            }
            Topology::FullyConnected => self.direct_phase(p, shard),
            Topology::Tree => self.chain_phase(p, false, p - 1, shard),
        }
    }

    /// Seconds for an all-reduce of `bytes` over `p` participants.
    fn all_reduce_p(&self, bytes: u64, p: usize) -> f64 {
        self.plan_all_reduce(bytes, p).s
    }

    /// Seconds for an all-gather whose gathered size is `bytes` over `p`
    /// participants.
    fn all_gather_p(&self, bytes: u64, p: usize) -> f64 {
        self.plan_all_gather(bytes, p).s
    }

    /// All-reduce of `bytes` over the whole fabric.
    #[must_use]
    pub fn all_reduce_s(&self, bytes: u64) -> f64 {
        self.all_reduce_p(bytes, self.chips)
    }

    /// All-gather with gathered size `bytes` over the whole fabric.
    #[must_use]
    pub fn all_gather_s(&self, bytes: u64) -> f64 {
        self.all_gather_p(bytes, self.chips)
    }

    /// Reduce-scatter of `bytes` over the whole fabric. The mirror image
    /// of the all-gather: identical step structure, data flowing the
    /// other way, so it costs the same (for halving-doubling the mirrored
    /// direction moves the same message multiset over the same
    /// distances).
    #[must_use]
    pub fn reduce_scatter_s(&self, bytes: u64) -> f64 {
        self.all_gather_s(bytes)
    }

    /// All-reduce over an explicit participant set — a subset of the
    /// chips forming a logical ring in the given order-insensitive set.
    /// Cost depends only on how many participate, never on the order (or
    /// duplication) in which the slice lists them.
    #[must_use]
    pub fn all_reduce_among_s(&self, bytes: u64, participants: &[usize]) -> f64 {
        self.all_reduce_p(bytes, distinct_on_fabric(participants, self.chips))
    }

    /// All-gather over an explicit participant set (gathered size
    /// `bytes`). Order-insensitive like
    /// [`all_reduce_among_s`](Self::all_reduce_among_s).
    #[must_use]
    pub fn all_gather_among_s(&self, bytes: u64, participants: &[usize]) -> f64 {
        self.all_gather_p(bytes, distinct_on_fabric(participants, self.chips))
    }

    /// Reduce-scatter over an explicit participant set.
    #[must_use]
    pub fn reduce_scatter_among_s(&self, bytes: u64, participants: &[usize]) -> f64 {
        self.all_gather_among_s(bytes, participants)
    }

    /// Hop distance between two chips under this topology.
    #[must_use]
    pub fn hops(&self, from: usize, to: usize) -> usize {
        assert!(from < self.chips && to < self.chips, "chip id out of range");
        if from == to {
            return 0;
        }
        match self.topology {
            Topology::Ring => {
                let d = from.abs_diff(to);
                d.min(self.chips - d)
            }
            Topology::Mesh2d => {
                let (_, c) = Topology::mesh_dims(self.chips);
                let (x1, y1) = (from % c, from / c);
                let (x2, y2) = (to % c, to / c);
                x1.abs_diff(x2) + y1.abs_diff(y2)
            }
            Topology::Torus2d => {
                let (r, c) = Topology::mesh_dims(self.chips);
                let (x1, y1) = (from % c, from / c);
                let (x2, y2) = (to % c, to / c);
                let dx = x1.abs_diff(x2);
                let dy = y1.abs_diff(y2);
                dx.min(c - dx) + dy.min(r - dy)
            }
            Topology::FullyConnected => 1,
            Topology::Tree => {
                // Climb toward the common ancestor of the implicit
                // complete binary tree, one level at a time.
                let (mut a, mut b) = (from, to);
                let mut hops = 0;
                while a != b {
                    if a > b {
                        a = (a - 1) / 2;
                    } else {
                        b = (b - 1) / 2;
                    }
                    hops += 1;
                }
                hops
            }
        }
    }

    /// Seconds to move `bytes` point-to-point from one chip to another —
    /// wormhole style: the per-hop latency is paid per hop, the
    /// serialization time once.
    #[must_use]
    pub fn p2p_s(&self, bytes: u64, from: usize, to: usize) -> f64 {
        let hops = self.hops(from, to);
        if hops == 0 {
            return 0.0;
        }
        hops as f64 * self.link.latency_s + bytes as f64 / self.link.bytes_per_s
    }

    /// Seconds to migrate `tokens` tokens of KV-cache state (at
    /// `bytes_per_token`) between two chips — the request-migration /
    /// prefix-transfer primitive a disaggregated serving cluster pays.
    #[must_use]
    pub fn kv_transfer_s(&self, tokens: u64, bytes_per_token: u64, from: usize, to: usize) -> f64 {
        self.p2p_s(tokens.saturating_mul(bytes_per_token), from, to)
    }

    /// Picojoules to move `bytes` once across links (per traversal; a
    /// `k`-step collective moving `n` bytes per step charges `k·n`
    /// traversed bytes — use the `*_traversed_bytes` accessors).
    #[must_use]
    pub fn transfer_energy_pj(&self, traversed_bytes: f64) -> f64 {
        traversed_bytes * self.link.pj_per_byte
    }

    /// Bytes each chip pushes through its links during an all-reduce of
    /// `bytes` — the traffic the energy model charges. Derived from the
    /// same step structure as the latency (ring: `2(p-1)/p·n` per chip;
    /// dilation-2 open-chain embeddings charge each logical hop's
    /// physical links).
    #[must_use]
    pub fn all_reduce_traversed_bytes(&self, bytes: u64) -> f64 {
        self.plan_all_reduce(bytes, self.chips).traversed
    }

    /// Bytes each chip pushes through its links during an all-gather of
    /// gathered size `bytes` (a reduce-scatter traverses the same).
    #[must_use]
    pub fn all_gather_traversed_bytes(&self, bytes: u64) -> f64 {
        self.plan_all_gather(bytes, self.chips).traversed
    }
}

impl fmt::Display for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chips, {} [{}] ({})",
            self.chips, self.topology, self.algo, self.link
        )
    }
}

/// Number of distinct, in-range chip ids in a participant slice.
fn distinct_on_fabric(participants: &[usize], chips: usize) -> usize {
    let mut seen = vec![false; chips];
    let mut count = 0;
    for &p in participants {
        if p < chips && !seen[p] {
            seen[p] = true;
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn ring_all_reduce_matches_closed_form() {
        // T = 2(p-1) · (α + n/(p·β)) — the canonical ring-allreduce bound.
        let link = Link {
            bytes_per_s: 100.0e9,
            latency_s: 2.0e-6,
            pj_per_byte: 80.0,
        };
        for p in [2usize, 4, 7, 8, 16] {
            let fabric = Fabric::new(p, Topology::Ring, link);
            let n = 64 * MIB;
            let expect = 2.0 * (p - 1) as f64 * (2.0e-6 + n as f64 / (p as f64 * 100.0e9));
            let got = fabric.all_reduce_s(n);
            assert!(
                (got - expect).abs() < 1e-12 * expect.max(1.0),
                "p={p}: got {got}, closed form {expect}"
            );
        }
    }

    #[test]
    fn ring_gather_and_scatter_match_closed_form() {
        let link = Link::cloud();
        let fabric = Fabric::new(8, Topology::Ring, link);
        let n = 32 * MIB;
        let expect = 7.0 * (link.latency_s + n as f64 / (8.0 * link.bytes_per_s));
        assert!((fabric.all_gather_s(n) - expect).abs() < 1e-15);
        assert_eq!(fabric.all_gather_s(n), fabric.reduce_scatter_s(n));
    }

    #[test]
    fn single_chip_collectives_are_free() {
        for topo in Topology::all() {
            for algo in CollectiveAlgo::all() {
                let f = Fabric::new(1, topo, Link::cloud()).with_algo(algo);
                assert_eq!(f.all_reduce_s(MIB), 0.0);
                assert_eq!(f.all_gather_s(MIB), 0.0);
                assert_eq!(f.reduce_scatter_s(MIB), 0.0);
                assert_eq!(f.all_reduce_traversed_bytes(MIB), 0.0);
                assert_eq!(f.all_gather_traversed_bytes(MIB), 0.0);
            }
        }
    }

    #[test]
    fn mesh_dims_are_near_square_divisors() {
        assert_eq!(Topology::mesh_dims(1), (1, 1));
        assert_eq!(Topology::mesh_dims(4), (2, 2));
        assert_eq!(Topology::mesh_dims(8), (2, 4));
        assert_eq!(Topology::mesh_dims(12), (3, 4));
        assert_eq!(
            Topology::mesh_dims(7),
            (1, 7),
            "primes degenerate to a line"
        );
    }

    #[test]
    fn mesh_all_reduce_prices_open_chains_at_dilation_two() {
        // An 8-chip mesh is 2 x 4: the 2-chip column chain *is* a 2-ring,
        // but the 4-chip row chain has no wraparound, so its ring
        // schedule runs through the dilation-2 snake embedding and costs
        // twice the 4-ring phase.
        let link = Link::cloud();
        let f = Fabric::new(8, Topology::Mesh2d, link);
        let n = 16 * MIB;
        let rows2 = Fabric::new(2, Topology::Ring, link).all_reduce_s(n);
        let cols4 = Fabric::new(4, Topology::Ring, link).all_reduce_s(n);
        assert!((f.all_reduce_s(n) - (rows2 + 2.0 * cols4)).abs() < 1e-15);
        // The torus keeps its wraparound links: its phases are true rings.
        let t = Fabric::new(8, Topology::Torus2d, link);
        assert!((t.all_reduce_s(n) - (rows2 + cols4)).abs() < 1e-15);
    }

    #[test]
    fn prime_chip_mesh_prices_the_degenerate_line() {
        // mesh_dims(7) = (1, 7): a single open chain. The ring schedule
        // on it pays the dilation-2 factor; the 7-chip torus wraps the
        // same chain into a true ring.
        let link = Link::cloud();
        let n = 16 * MIB;
        let line = Fabric::new(7, Topology::Mesh2d, link).all_reduce_s(n);
        let ring = Fabric::new(7, Topology::Ring, link).all_reduce_s(n);
        let torus = Fabric::new(7, Topology::Torus2d, link).all_reduce_s(n);
        assert!((line - 2.0 * ring).abs() < 1e-15, "line = 2x ring phases");
        assert!((torus - ring).abs() < 1e-15, "1xp torus wraps into a ring");
    }

    #[test]
    fn mesh_at_least_torus_at_least_fully_connected() {
        // Equal bytes, equal links: removing wraparound can only hurt,
        // and dedicated all-pairs links can only help.
        let link = Link::cloud();
        let n = 8 * MIB;
        for p in [2usize, 3, 4, 6, 7, 8, 12, 16] {
            for algo in CollectiveAlgo::all() {
                let mesh = Fabric::new(p, Topology::Mesh2d, link).with_algo(algo);
                let torus = Fabric::new(p, Topology::Torus2d, link).with_algo(algo);
                let fc = Fabric::new(p, Topology::FullyConnected, link).with_algo(algo);
                assert!(
                    mesh.all_reduce_s(n) >= torus.all_reduce_s(n) - 1e-15,
                    "p={p} algo={algo}: mesh all-reduce must not beat the torus"
                );
                assert!(
                    torus.all_reduce_s(n) >= fc.all_reduce_s(n) - 1e-15,
                    "p={p} algo={algo}: torus all-reduce must not beat fully-connected"
                );
                assert!(
                    mesh.all_gather_s(n) >= torus.all_gather_s(n) - 1e-15,
                    "p={p} algo={algo}: mesh all-gather must not beat the torus"
                );
                assert!(
                    torus.all_gather_s(n) >= fc.all_gather_s(n) - 1e-15,
                    "p={p} algo={algo}: torus all-gather must not beat fully-connected"
                );
            }
        }
    }

    #[test]
    fn bucket_beats_dimension_ordered_ring_on_the_torus() {
        // Sharding through the column phase moves n/(r*c) per step
        // instead of n/r — strictly cheaper when both dims are real.
        let link = Link::cloud();
        let n = 16 * MIB;
        for p in [4usize, 8, 12, 16] {
            let ring = Fabric::new(p, Topology::Torus2d, link).all_reduce_s(n);
            let bucket = Fabric::new(p, Topology::Torus2d, link)
                .with_algo(CollectiveAlgo::Bucket)
                .all_reduce_s(n);
            assert!(
                bucket < ring,
                "p={p}: bucket {bucket} must beat dimension-ordered ring {ring}"
            );
        }
    }

    #[test]
    fn halving_doubling_collapses_latency_on_low_diameter_fabrics() {
        // Tiny message: cost is pure step latency. On the tree, hd's
        // 2·log2(p) rounds of 2 hops beat the embedded ring's 2(p-1)
        // dilated steps.
        let link = Link {
            bytes_per_s: 1.0e18,
            latency_s: 1.0e-6,
            pj_per_byte: 80.0,
        };
        let p = 16;
        let tree_ring = Fabric::new(p, Topology::Tree, link).all_reduce_s(8);
        let tree_hd = Fabric::new(p, Topology::Tree, link)
            .with_algo(CollectiveAlgo::HalvingDoubling)
            .all_reduce_s(8);
        assert!(tree_hd < tree_ring);
        // 2 hops x log2(p) rounds x 2 directions of latency.
        let expect = 4.0 * (p as f64).log2() * link.latency_s;
        assert!((tree_hd - expect).abs() < 1e-12);
    }

    #[test]
    fn halving_doubling_falls_back_to_ring_off_powers_of_two() {
        let link = Link::cloud();
        for topo in Topology::all() {
            let ring = Fabric::new(6, topo, link).all_reduce_s(4 * MIB);
            let hd = Fabric::new(6, topo, link)
                .with_algo(CollectiveAlgo::HalvingDoubling)
                .all_reduce_s(4 * MIB);
            assert_eq!(ring, hd, "{topo}: 6 chips must fall back to ring");
        }
    }

    #[test]
    fn hop_distances_respect_topology() {
        let ring = Fabric::new(8, Topology::Ring, Link::cloud());
        assert_eq!(ring.hops(0, 1), 1);
        assert_eq!(ring.hops(0, 7), 1, "rings wrap");
        assert_eq!(ring.hops(0, 4), 4);
        let mesh = Fabric::new(8, Topology::Mesh2d, Link::cloud()); // 2 x 4
        assert_eq!(mesh.hops(0, 3), 3);
        assert_eq!(mesh.hops(0, 7), 4, "meshes do not wrap");
        let torus = Fabric::new(8, Topology::Torus2d, Link::cloud()); // 2 x 4
        assert_eq!(torus.hops(0, 3), 1, "tori wrap along rows");
        assert_eq!(torus.hops(0, 7), 2);
        let fc = Fabric::new(8, Topology::FullyConnected, Link::cloud());
        assert_eq!(fc.hops(0, 7), 1);
        let tree = Fabric::new(8, Topology::Tree, Link::cloud());
        assert_eq!(tree.hops(0, 1), 1, "root to child");
        assert_eq!(tree.hops(1, 2), 2, "siblings meet at the root");
        assert_eq!(tree.hops(7, 2), 4, "leaf to opposite subtree");
        for f in [&ring, &mesh, &torus, &fc, &tree] {
            assert_eq!(f.hops(3, 3), 0);
            assert_eq!(f.p2p_s(MIB, 2, 2), 0.0);
        }
    }

    #[test]
    fn p2p_charges_latency_per_hop_bandwidth_once() {
        let link = Link {
            bytes_per_s: 1.0e9,
            latency_s: 1.0e-6,
            pj_per_byte: 80.0,
        };
        let ring = Fabric::new(8, Topology::Ring, link);
        let serialization = MIB as f64 / 1.0e9;
        assert!((ring.p2p_s(MIB, 0, 4) - (4.0e-6 + serialization)).abs() < 1e-15);
        assert!((ring.kv_transfer_s(1024, 1024, 0, 4) - (4.0e-6 + serialization)).abs() < 1e-15);
    }

    #[test]
    fn among_is_a_set_operation() {
        let f = Fabric::new(8, Topology::Ring, Link::cloud());
        let n = 4 * MIB;
        assert_eq!(
            f.all_reduce_among_s(n, &[0, 3, 5]),
            f.all_reduce_among_s(n, &[5, 0, 3])
        );
        assert_eq!(
            f.all_reduce_among_s(n, &[0, 3, 3, 5]),
            f.all_reduce_among_s(n, &[0, 3, 5]),
            "duplicates do not inflate the group"
        );
        assert_eq!(f.all_reduce_among_s(n, &[2]), 0.0);
        assert_eq!(f.all_reduce_among_s(n, &[]), 0.0);
    }

    #[test]
    fn topology_names_round_trip() {
        for t in Topology::all() {
            // The canonical Display name parses back...
            assert_eq!(Topology::by_name(&t.to_string()).unwrap(), t);
            // ...as does every accepted alias, in any case.
            for name in t.names() {
                assert_eq!(Topology::by_name(name).unwrap(), t);
                assert_eq!(Topology::by_name(&name.to_uppercase()).unwrap(), t);
            }
        }
        let err = Topology::by_name("hypercube").unwrap_err();
        for t in Topology::all() {
            assert!(
                err.contains(t.names()[0]),
                "error must list {} (got: {err})",
                t.names()[0]
            );
        }
    }

    #[test]
    fn algo_names_round_trip() {
        for a in CollectiveAlgo::all() {
            assert_eq!(CollectiveAlgo::by_name(&a.to_string()).unwrap(), a);
            for name in a.names() {
                assert_eq!(CollectiveAlgo::by_name(name).unwrap(), a);
                assert_eq!(CollectiveAlgo::by_name(&name.to_uppercase()).unwrap(), a);
            }
        }
        let err = CollectiveAlgo::by_name("butterfly").unwrap_err();
        assert!(err.contains("ring") && err.contains("hd") && err.contains("bucket"));
    }

    #[test]
    fn fabric_with_algo_deserializes_with_and_without_the_field() {
        let f = Fabric::new(8, Topology::Torus2d, Link::cloud())
            .with_algo(CollectiveAlgo::HalvingDoubling);
        let json = serde_json::to_string(&f).unwrap();
        let back: Fabric = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        // Pre-algo serializations (PR 4 era) default to the ring schedule.
        let legacy = r#"{"chips":4,"topology":"Ring","link":{"bytes_per_s":3e11,"latency_s":1e-6,"pj_per_byte":80.0}}"#;
        let back: Fabric = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.algo, CollectiveAlgo::Ring);
    }
}
