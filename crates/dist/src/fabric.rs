//! The inter-chip fabric: topologies, links, and analytical collective
//! costs.
//!
//! The on-chip [`flat_arch::Noc`] model stops at the chip boundary; this
//! module picks up from there. A [`Fabric`] is `chips` identical
//! accelerators joined by identical [`Link`]s in one of three
//! [`Topology`] shapes, and every collective a sharded attention
//! execution needs — `all_reduce`, `all_gather`, `reduce_scatter`, and
//! point-to-point KV transfer — is priced with the standard α–β model
//! (per-message latency `α` seconds, bandwidth `β` bytes/s per link):
//!
//! * **Ring** — the bandwidth-optimal ring algorithms: a reduce-scatter
//!   or all-gather makes `p−1` steps each moving `n/p` bytes, so
//!   `T = (p−1)·(α + n/(p·β))`, and an all-reduce is the two chained,
//!   `T = 2·(p−1)·(α + n/(p·β))` — the closed form the tests pin.
//! * **2-D mesh** — dimension-ordered: the ring algorithm runs along
//!   rows, then along columns (a correct if not bandwidth-optimal
//!   schedule; costs compose additively).
//! * **Fully connected** — every pair of chips has a dedicated link, so
//!   the direct one-step algorithms apply: each chip exchanges `n/p`
//!   shards with all peers concurrently, `T = α + n/(p·β)` per phase.
//!
//! All costs are *symmetric in participant order* (a collective over
//! `{0,1,2}` costs what one over `{2,0,1}` costs — the schedule embeds a
//! logical ring over the participant set) and *monotone in message
//! size*; in chip count the ring and mesh grow while the fully-connected
//! fabric shrinks (more dedicated links than data). The property tests
//! in `tests/prop.rs` hold all of this across all three topologies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How the chips are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// A bidirectional ring (TPU-pod-slice style, degree 2).
    Ring,
    /// A near-square 2-D mesh without wraparound links.
    Mesh2d,
    /// A dedicated link between every pair of chips (NVLink-switch
    /// style).
    FullyConnected,
}

impl Topology {
    /// All topologies, for sweeps.
    #[must_use]
    pub const fn all() -> [Topology; 3] {
        [Topology::Ring, Topology::Mesh2d, Topology::FullyConnected]
    }

    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Lists the accepted names on an unknown label.
    pub fn by_name(name: &str) -> Result<Self, String> {
        match name {
            "ring" => Ok(Topology::Ring),
            "mesh" | "mesh2d" => Ok(Topology::Mesh2d),
            "fc" | "fully-connected" => Ok(Topology::FullyConnected),
            other => Err(format!("unknown topology {other:?} (ring|mesh|fc)")),
        }
    }

    /// The near-square `(rows, cols)` factorization of `chips` used by the
    /// mesh: the largest divisor pair with `rows <= cols`. Prime chip
    /// counts degenerate to a `1 × p` mesh — a ring without wraparound.
    #[must_use]
    pub fn mesh_dims(chips: usize) -> (usize, usize) {
        let p = chips.max(1);
        let mut rows = 1;
        let mut d = 1;
        while d * d <= p {
            if p.is_multiple_of(d) {
                rows = d;
            }
            d += 1;
        }
        (rows, p / rows)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Topology::Ring => "ring",
            Topology::Mesh2d => "mesh",
            Topology::FullyConnected => "fully-connected",
        };
        f.write_str(name)
    }
}

/// One inter-chip link: α–β cost parameters plus a per-byte transfer
/// energy for the energy roll-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per second (per direction).
    pub bytes_per_s: f64,
    /// Per-message (per-hop) latency in seconds.
    pub latency_s: f64,
    /// Energy per byte moved across the link, in picojoules. Inter-chip
    /// SerDes costs an order of magnitude more than DRAM access —
    /// ~10 pJ/bit ≈ 80 pJ/B is the commonly quoted class.
    pub pj_per_byte: f64,
}

impl Link {
    /// A 300 GB/s, 1 µs, 80 pJ/B link — the NVLink/ICI class that pairs
    /// with the cloud accelerator preset.
    #[must_use]
    pub fn cloud() -> Self {
        Link {
            bytes_per_s: 300.0e9,
            latency_s: 1.0e-6,
            pj_per_byte: 80.0,
        }
    }

    /// A 25 GB/s, 2 µs PCIe-class link for edge clusters.
    #[must_use]
    pub fn edge() -> Self {
        Link {
            bytes_per_s: 25.0e9,
            latency_s: 2.0e-6,
            pj_per_byte: 80.0,
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} GB/s, {:.1} us/hop",
            self.bytes_per_s / 1e9,
            self.latency_s * 1e6
        )
    }
}

/// A cluster fabric: `chips` accelerators joined by identical [`Link`]s
/// in a [`Topology`].
///
/// # Example
///
/// ```
/// use flat_dist::{Fabric, Link, Topology};
///
/// let ring = Fabric::new(8, Topology::Ring, Link::cloud());
/// let fc = Fabric::new(8, Topology::FullyConnected, Link::cloud());
/// let n = 64 * 1024 * 1024;
/// // Same bytes, same links: the fully-connected fabric finishes an
/// // all-reduce faster than the ring's 2(p-1) steps.
/// assert!(fc.all_reduce_s(n) < ring.all_reduce_s(n));
/// // One chip needs no communication at all.
/// assert_eq!(Fabric::new(1, Topology::Ring, Link::cloud()).all_reduce_s(n), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    /// Number of accelerators in the cluster.
    pub chips: usize,
    /// How they are wired.
    pub topology: Topology,
    /// The per-link cost parameters.
    pub link: Link,
}

impl Fabric {
    /// A fabric of `chips` chips. A single chip is legal (every
    /// collective costs zero) so one cost model covers the whole sweep.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or the link parameters are not positive
    /// and finite.
    #[must_use]
    pub fn new(chips: usize, topology: Topology, link: Link) -> Self {
        assert!(chips > 0, "a fabric needs at least one chip");
        assert!(
            link.bytes_per_s > 0.0 && link.bytes_per_s.is_finite(),
            "link bandwidth must be positive"
        );
        assert!(
            link.latency_s >= 0.0 && link.latency_s.is_finite(),
            "link latency must be non-negative"
        );
        Fabric {
            chips,
            topology,
            link,
        }
    }

    /// Ring phase cost: `steps` steps each moving `bytes_per_step`.
    fn ring_phase(&self, steps: usize, bytes_per_step: f64) -> f64 {
        steps as f64 * (self.link.latency_s + bytes_per_step / self.link.bytes_per_s)
    }

    /// Seconds for an all-reduce of `bytes` (each chip starts and ends
    /// with the full `bytes`-sized vector) over `p` participants.
    fn all_reduce_p(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let n = bytes as f64;
        match self.topology {
            // Reduce-scatter then all-gather: 2(p-1) steps of n/p each.
            Topology::Ring => self.ring_phase(2 * (p - 1), n / p as f64),
            // Ring all-reduce along rows (full vector), then along
            // columns: after the row phase every chip of a row holds the
            // row sum, so the column phase completes the global sum.
            Topology::Mesh2d => {
                let (r, c) = Topology::mesh_dims(p);
                self.ring_phase(2 * (c - 1), n / c as f64)
                    + self.ring_phase(2 * (r - 1), n / r as f64)
            }
            // Direct reduce-scatter + all-gather over dedicated links:
            // each chip exchanges its n/p shard with all peers at once.
            Topology::FullyConnected => 2.0 * self.ring_phase(1, n / p as f64),
        }
    }

    /// Seconds for an all-gather whose *gathered* size is `bytes` (each
    /// of the `p` participants contributes `bytes / p`).
    fn all_gather_p(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let n = bytes as f64;
        let shard = n / p as f64;
        match self.topology {
            Topology::Ring => self.ring_phase(p - 1, shard),
            // Gather along rows (shards of size n/p), then along columns
            // (each column step moves a whole gathered row, c shards).
            Topology::Mesh2d => {
                let (r, c) = Topology::mesh_dims(p);
                self.ring_phase(c - 1, shard) + self.ring_phase(r - 1, shard * c as f64)
            }
            Topology::FullyConnected => self.ring_phase(1, shard),
        }
    }

    /// All-reduce of `bytes` over the whole fabric.
    #[must_use]
    pub fn all_reduce_s(&self, bytes: u64) -> f64 {
        self.all_reduce_p(bytes, self.chips)
    }

    /// All-gather with gathered size `bytes` over the whole fabric.
    #[must_use]
    pub fn all_gather_s(&self, bytes: u64) -> f64 {
        self.all_gather_p(bytes, self.chips)
    }

    /// Reduce-scatter of `bytes` over the whole fabric. The mirror image
    /// of the all-gather: identical step structure, data flowing the
    /// other way, so it costs the same.
    #[must_use]
    pub fn reduce_scatter_s(&self, bytes: u64) -> f64 {
        self.all_gather_s(bytes)
    }

    /// All-reduce over an explicit participant set — a subset of the
    /// chips forming a logical ring in the given order-insensitive set.
    /// Cost depends only on how many participate, never on the order (or
    /// duplication) in which the slice lists them.
    #[must_use]
    pub fn all_reduce_among_s(&self, bytes: u64, participants: &[usize]) -> f64 {
        self.all_reduce_p(bytes, distinct_on_fabric(participants, self.chips))
    }

    /// All-gather over an explicit participant set (gathered size
    /// `bytes`). Order-insensitive like
    /// [`all_reduce_among_s`](Self::all_reduce_among_s).
    #[must_use]
    pub fn all_gather_among_s(&self, bytes: u64, participants: &[usize]) -> f64 {
        self.all_gather_p(bytes, distinct_on_fabric(participants, self.chips))
    }

    /// Reduce-scatter over an explicit participant set.
    #[must_use]
    pub fn reduce_scatter_among_s(&self, bytes: u64, participants: &[usize]) -> f64 {
        self.all_gather_among_s(bytes, participants)
    }

    /// Hop distance between two chips under this topology.
    #[must_use]
    pub fn hops(&self, from: usize, to: usize) -> usize {
        assert!(from < self.chips && to < self.chips, "chip id out of range");
        if from == to {
            return 0;
        }
        match self.topology {
            Topology::Ring => {
                let d = from.abs_diff(to);
                d.min(self.chips - d)
            }
            Topology::Mesh2d => {
                let (_, c) = Topology::mesh_dims(self.chips);
                let (x1, y1) = (from % c, from / c);
                let (x2, y2) = (to % c, to / c);
                x1.abs_diff(x2) + y1.abs_diff(y2)
            }
            Topology::FullyConnected => 1,
        }
    }

    /// Seconds to move `bytes` point-to-point from one chip to another —
    /// wormhole style: the per-hop latency is paid per hop, the
    /// serialization time once.
    #[must_use]
    pub fn p2p_s(&self, bytes: u64, from: usize, to: usize) -> f64 {
        let hops = self.hops(from, to);
        if hops == 0 {
            return 0.0;
        }
        hops as f64 * self.link.latency_s + bytes as f64 / self.link.bytes_per_s
    }

    /// Seconds to migrate `tokens` tokens of KV-cache state (at
    /// `bytes_per_token`) between two chips — the request-migration /
    /// prefix-transfer primitive a disaggregated serving cluster pays.
    #[must_use]
    pub fn kv_transfer_s(&self, tokens: u64, bytes_per_token: u64, from: usize, to: usize) -> f64 {
        self.p2p_s(tokens.saturating_mul(bytes_per_token), from, to)
    }

    /// Picojoules to move `bytes` once across links (per traversal; a
    /// `k`-step collective moving `n` bytes per step charges `k·n`
    /// traversed bytes — use [`collective_traversed_bytes`]).
    #[must_use]
    pub fn transfer_energy_pj(&self, traversed_bytes: f64) -> f64 {
        traversed_bytes * self.link.pj_per_byte
    }

    /// Bytes each chip pushes through its links during an all-reduce of
    /// `bytes` — the traffic the energy model charges. Ring: `2(p-1)/p·n`
    /// per chip; the mesh and fully-connected schedules are derived the
    /// same way from their step structure.
    #[must_use]
    pub fn all_reduce_traversed_bytes(&self, bytes: u64) -> f64 {
        let p = self.chips;
        if p <= 1 {
            return 0.0;
        }
        let n = bytes as f64;
        match self.topology {
            Topology::Ring => 2.0 * (p - 1) as f64 * n / p as f64,
            Topology::Mesh2d => {
                let (r, c) = Topology::mesh_dims(p);
                2.0 * (c - 1) as f64 * n / c as f64 + 2.0 * (r - 1) as f64 * n / r as f64
            }
            Topology::FullyConnected => 2.0 * (p - 1) as f64 * n / p as f64,
        }
    }
}

impl fmt::Display for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} chips, {} ({})", self.chips, self.topology, self.link)
    }
}

/// Number of distinct, in-range chip ids in a participant slice.
fn distinct_on_fabric(participants: &[usize], chips: usize) -> usize {
    let mut seen = vec![false; chips];
    let mut count = 0;
    for &p in participants {
        if p < chips && !seen[p] {
            seen[p] = true;
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn ring_all_reduce_matches_closed_form() {
        // T = 2(p-1) · (α + n/(p·β)) — the canonical ring-allreduce bound.
        let link = Link {
            bytes_per_s: 100.0e9,
            latency_s: 2.0e-6,
            pj_per_byte: 80.0,
        };
        for p in [2usize, 4, 7, 8, 16] {
            let fabric = Fabric::new(p, Topology::Ring, link);
            let n = 64 * MIB;
            let expect = 2.0 * (p - 1) as f64 * (2.0e-6 + n as f64 / (p as f64 * 100.0e9));
            let got = fabric.all_reduce_s(n);
            assert!(
                (got - expect).abs() < 1e-12 * expect.max(1.0),
                "p={p}: got {got}, closed form {expect}"
            );
        }
    }

    #[test]
    fn ring_gather_and_scatter_match_closed_form() {
        let link = Link::cloud();
        let fabric = Fabric::new(8, Topology::Ring, link);
        let n = 32 * MIB;
        let expect = 7.0 * (link.latency_s + n as f64 / (8.0 * link.bytes_per_s));
        assert!((fabric.all_gather_s(n) - expect).abs() < 1e-15);
        assert_eq!(fabric.all_gather_s(n), fabric.reduce_scatter_s(n));
    }

    #[test]
    fn single_chip_collectives_are_free() {
        for topo in Topology::all() {
            let f = Fabric::new(1, topo, Link::cloud());
            assert_eq!(f.all_reduce_s(MIB), 0.0);
            assert_eq!(f.all_gather_s(MIB), 0.0);
            assert_eq!(f.reduce_scatter_s(MIB), 0.0);
            assert_eq!(f.all_reduce_traversed_bytes(MIB), 0.0);
        }
    }

    #[test]
    fn mesh_dims_are_near_square_divisors() {
        assert_eq!(Topology::mesh_dims(1), (1, 1));
        assert_eq!(Topology::mesh_dims(4), (2, 2));
        assert_eq!(Topology::mesh_dims(8), (2, 4));
        assert_eq!(Topology::mesh_dims(12), (3, 4));
        assert_eq!(
            Topology::mesh_dims(7),
            (1, 7),
            "primes degenerate to a line"
        );
    }

    #[test]
    fn mesh_all_reduce_is_row_phase_plus_column_phase() {
        let link = Link::cloud();
        let f = Fabric::new(8, Topology::Mesh2d, link);
        let n = 16 * MIB;
        let rows2 = Fabric::new(2, Topology::Ring, link).all_reduce_s(n);
        let cols4 = Fabric::new(4, Topology::Ring, link).all_reduce_s(n);
        assert!((f.all_reduce_s(n) - (rows2 + cols4)).abs() < 1e-15);
    }

    #[test]
    fn hop_distances_respect_topology() {
        let ring = Fabric::new(8, Topology::Ring, Link::cloud());
        assert_eq!(ring.hops(0, 1), 1);
        assert_eq!(ring.hops(0, 7), 1, "rings wrap");
        assert_eq!(ring.hops(0, 4), 4);
        let mesh = Fabric::new(8, Topology::Mesh2d, Link::cloud()); // 2 x 4
        assert_eq!(mesh.hops(0, 3), 3);
        assert_eq!(mesh.hops(0, 7), 4, "meshes do not wrap");
        let fc = Fabric::new(8, Topology::FullyConnected, Link::cloud());
        assert_eq!(fc.hops(0, 7), 1);
        for f in [&ring, &mesh, &fc] {
            assert_eq!(f.hops(3, 3), 0);
            assert_eq!(f.p2p_s(MIB, 2, 2), 0.0);
        }
    }

    #[test]
    fn p2p_charges_latency_per_hop_bandwidth_once() {
        let link = Link {
            bytes_per_s: 1.0e9,
            latency_s: 1.0e-6,
            pj_per_byte: 80.0,
        };
        let ring = Fabric::new(8, Topology::Ring, link);
        let serialization = MIB as f64 / 1.0e9;
        assert!((ring.p2p_s(MIB, 0, 4) - (4.0e-6 + serialization)).abs() < 1e-15);
        assert!((ring.kv_transfer_s(1024, 1024, 0, 4) - (4.0e-6 + serialization)).abs() < 1e-15);
    }

    #[test]
    fn among_is_a_set_operation() {
        let f = Fabric::new(8, Topology::Ring, Link::cloud());
        let n = 4 * MIB;
        assert_eq!(
            f.all_reduce_among_s(n, &[0, 3, 5]),
            f.all_reduce_among_s(n, &[5, 0, 3])
        );
        assert_eq!(
            f.all_reduce_among_s(n, &[0, 3, 3, 5]),
            f.all_reduce_among_s(n, &[0, 3, 5]),
            "duplicates do not inflate the group"
        );
        assert_eq!(f.all_reduce_among_s(n, &[2]), 0.0);
        assert_eq!(f.all_reduce_among_s(n, &[]), 0.0);
    }

    #[test]
    fn topology_names_round_trip() {
        for t in Topology::all() {
            let name = match t {
                Topology::Ring => "ring",
                Topology::Mesh2d => "mesh",
                Topology::FullyConnected => "fc",
            };
            assert_eq!(Topology::by_name(name).unwrap(), t);
        }
        assert!(Topology::by_name("hypercube").is_err());
    }
}
