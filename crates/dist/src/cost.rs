//! The distributed cost model: per-shard compute priced by the existing
//! single-chip [`CostModel`], plus collective time priced by the
//! [`Fabric`].
//!
//! The split is deliberately clean — a [`DistModel`] never re-derives
//! compute costs. It shrinks the workload with
//! [`Partition::shard_config`], hands the shard to `flat-core`
//! unchanged, and adds the fabric's collective seconds and link energy
//! on top. That makes the 1-chip case an *identity*: one chip shards to
//! the whole workload, pays zero collective time, and the resulting
//! [`DistReport::shard`] is field-for-field equal to the plain
//! single-accelerator report — the equivalence the tests diff-assert.
//!
//! Collective time lands in the report twice: `collective_s` is the raw
//! fabric busy time, `exposed_s` is the part on the critical path. With
//! overlap off (the default, and the PR 4 baseline the pinned tests
//! reproduce) they are equal — compute and collectives serialize. With
//! [`DistModel::with_overlap`] the collective rounds of one tile overlap
//! the compute of the next, so only `max(0, collective − compute)` is
//! exposed and the layer costs `max(compute, collective)`.

use crate::fabric::Fabric;
use crate::partition::Partition;
use flat_arch::Accelerator;
use flat_core::{BlockDataflow, CostModel, CostReport};
use flat_dse::{Dse, Objective, SpaceKind};
use flat_workloads::{AttentionBlock, AttentionConfig, Scope};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The verdict for one sharded attention layer on one cluster
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistReport {
    /// Chips in the cluster.
    pub chips: usize,
    /// Single-chip cost report for the critical-path shard (the chip
    /// with the ceiling share of the split).
    pub shard: CostReport,
    /// Seconds the shard's compute takes at the accelerator's clock.
    pub compute_s: f64,
    /// Seconds spent in collectives on the fabric (busy time, whether or
    /// not it overlaps compute).
    pub collective_s: f64,
    /// Collective seconds on the critical path: equal to `collective_s`
    /// under serial pricing, `max(0, collective_s − compute_s)` when the
    /// model overlaps collectives with compute.
    pub exposed_s: f64,
    /// Picojoules of shard compute (from the accelerator energy table).
    pub compute_pj: f64,
    /// Picojoules of inter-chip transfer (traversed bytes × link pJ/B).
    pub link_pj: f64,
}

impl DistReport {
    /// End-to-end modeled seconds for the layer: shard compute plus the
    /// *exposed* collective time. Serial pricing (overlap off) exposes
    /// every collective second; overlap pricing hides collectives under
    /// compute and this becomes `max(compute_s, collective_s)`.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.exposed_s
    }

    /// Total modeled energy across the cluster: every chip burns the
    /// shard's compute energy, plus the link traffic.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.chips as f64 * self.compute_pj + self.link_pj
    }

    /// Fraction of the layer's time spent stalled on the fabric rather
    /// than computing — the knob that locates the scaling knee. Counts
    /// only the *exposed* collective time, so an overlap-priced layer
    /// whose collectives hide under compute reports 0.
    #[must_use]
    pub fn fabric_fraction(&self) -> f64 {
        let total = self.total_s();
        if total <= 0.0 {
            0.0
        } else {
            self.exposed_s / total
        }
    }
}

impl fmt::Display for DistReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chips: {:.3} ms compute + {:.3} ms fabric exposed ({:.0}% fabric)",
            self.chips,
            self.compute_s * 1e3,
            self.exposed_s * 1e3,
            self.fabric_fraction() * 100.0
        )
    }
}

/// A cluster-level cost model: one accelerator type, a fabric, and a
/// partition strategy.
///
/// # Example
///
/// ```
/// use flat_arch::Accelerator;
/// use flat_core::{BlockDataflow, Granularity};
/// use flat_dist::{DistModel, Fabric, Link, Partition, Topology};
/// use flat_workloads::AttentionConfig;
///
/// let cfg = AttentionConfig::self_attention(1, 16, 4096, 1024, 4096);
/// let df = BlockDataflow::flat(Granularity::Row(64));
/// let one = DistModel::new(
///     Accelerator::cloud(),
///     Fabric::new(1, Topology::FullyConnected, Link::cloud()),
///     Partition::HeadParallel,
/// );
/// let eight = DistModel::new(
///     Accelerator::cloud(),
///     Fabric::new(8, Topology::FullyConnected, Link::cloud()),
///     Partition::HeadParallel,
/// );
/// let r1 = one.layer_cost(&cfg, &df);
/// let r8 = eight.layer_cost(&cfg, &df);
/// assert_eq!(r1.collective_s, 0.0);
/// assert!(r8.total_s() < r1.total_s(), "eight chips beat one");
/// ```
#[derive(Debug, Clone)]
pub struct DistModel {
    accel: Accelerator,
    fabric: Fabric,
    partition: Partition,
    overlap: bool,
}

impl DistModel {
    /// A distributed model over `fabric.chips` copies of `accel`, with
    /// serial (no-overlap) collective pricing — the conservative PR 4
    /// baseline.
    #[must_use]
    pub fn new(accel: Accelerator, fabric: Fabric, partition: Partition) -> Self {
        DistModel {
            accel,
            fabric,
            partition,
            overlap: false,
        }
    }

    /// Switches collective pricing: with `overlap` on, collective rounds
    /// hide under compute and only `max(0, collective − compute)` lands
    /// on the critical path.
    #[must_use]
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Whether this model overlaps collectives with compute.
    #[must_use]
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// The fabric this model prices collectives on.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The partition strategy in force.
    #[must_use]
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The per-chip workload for `cfg` under this model's partition.
    #[must_use]
    pub fn shard_config(&self, cfg: &AttentionConfig) -> AttentionConfig {
        self.partition.shard_config(cfg, self.fabric.chips)
    }

    /// Cost of one attention layer's fused L-A scope under an explicit
    /// dataflow: the shard's `flat-core` report plus fabric time and
    /// energy.
    ///
    /// The model is scoped to [`Scope::LogitAttend`] — the `N²` part the
    /// paper (and the shard boundary) is about; the projection and FC
    /// operators shard along different axes an [`AttentionConfig`]
    /// cannot express per-chip.
    #[must_use]
    pub fn layer_cost(&self, cfg: &AttentionConfig, df: &BlockDataflow) -> DistReport {
        let shard_cfg = self.shard_config(cfg);
        let block = AttentionBlock::new(shard_cfg);
        let shard = CostModel::new(&self.accel).scope_cost(&block, df, Scope::LogitAttend);
        self.report_for(cfg, shard)
    }

    /// Cost of one layer with the dataflow *searched* per shard: runs the
    /// `flat-dse` optimizer on the sharded workload, so each cluster size
    /// gets the L-A execution that suits its shard shape (small shards
    /// prefer different FLAT-tile granularities than the whole layer).
    #[must_use]
    pub fn layer_cost_searched(
        &self,
        cfg: &AttentionConfig,
        space: SpaceKind,
        objective: Objective,
    ) -> (BlockDataflow, DistReport) {
        let shard_cfg = self.shard_config(cfg);
        let block = AttentionBlock::new(shard_cfg);
        let (df, shard) =
            Dse::new(&self.accel, &block).best_at_scope(space, Scope::LogitAttend, objective);
        (df, self.report_for(cfg, shard))
    }

    /// Assembles the report: clock-converts the shard cycles and adds
    /// the partition's collectives priced on the fabric. `pub(crate)` so
    /// the sweep can search the shard dataflow once and re-price it on
    /// many fabrics.
    pub(crate) fn report_for(&self, cfg: &AttentionConfig, shard: CostReport) -> DistReport {
        let calls = self.partition.collectives(cfg, self.fabric.chips);
        // fold from +0.0: an empty iterator's `sum()` is -0.0, which
        // would leak a negative zero into reports and their JSON.
        let collective_s: f64 = calls
            .iter()
            .map(|c| c.cost_s(&self.fabric))
            .fold(0.0, |a, b| a + b);
        let traversed: f64 = calls
            .iter()
            .map(|c| c.traversed_bytes(&self.fabric))
            .fold(0.0, |a, b| a + b);
        let compute_s = self.accel.cycles_to_seconds(shard.cycles);
        let exposed_s = if self.overlap {
            (collective_s - compute_s).max(0.0)
        } else {
            collective_s
        };
        DistReport {
            chips: self.fabric.chips,
            shard,
            compute_s,
            collective_s,
            exposed_s,
            compute_pj: shard.energy.total_pj(),
            link_pj: self.fabric.transfer_energy_pj(traversed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Link, Topology};
    use flat_core::Granularity;

    fn cfg() -> AttentionConfig {
        AttentionConfig::self_attention(4, 16, 4096, 1024, 4096)
    }

    /// The acceptance-criterion identity: a 1-chip fully-connected
    /// cluster reproduces the single-`Accelerator` cost model *exactly* —
    /// the shard report is field-for-field equal (PartialEq on the whole
    /// CostReport, energy included) and collective time is zero.
    #[test]
    fn one_chip_fully_connected_is_the_single_chip_model() {
        let accel = Accelerator::cloud();
        let df = BlockDataflow::flat(Granularity::Row(64));
        let single =
            CostModel::new(&accel).scope_cost(&AttentionBlock::new(cfg()), &df, Scope::LogitAttend);
        for partition in [Partition::HeadParallel, Partition::SequenceParallel] {
            let model = DistModel::new(
                accel.clone(),
                Fabric::new(1, Topology::FullyConnected, Link::cloud()),
                partition,
            );
            let dist = model.layer_cost(&cfg(), &df);
            assert_eq!(
                dist.shard, single,
                "{partition}: shard report must be identical"
            );
            assert_eq!(dist.collective_s, 0.0, "{partition}");
            assert_eq!(dist.link_pj, 0.0, "{partition}");
            assert_eq!(dist.compute_s, accel.cycles_to_seconds(single.cycles));
            assert_eq!(dist.total_pj(), single.energy.total_pj());
        }
    }

    #[test]
    fn more_chips_shrink_compute_and_add_fabric_time() {
        let accel = Accelerator::cloud();
        let df = BlockDataflow::flat(Granularity::Row(64));
        let at = |chips| {
            DistModel::new(
                accel.clone(),
                Fabric::new(chips, Topology::Ring, Link::cloud()),
                Partition::HeadParallel,
            )
            .layer_cost(&cfg(), &df)
        };
        let (one, eight) = (at(1), at(8));
        assert!(eight.compute_s < one.compute_s / 4.0, "8-way head split");
        assert!(eight.collective_s > 0.0);
        assert!(eight.fabric_fraction() > 0.0 && eight.fabric_fraction() < 1.0);
    }

    #[test]
    fn searched_dataflow_never_loses_to_a_fixed_one() {
        let accel = Accelerator::cloud();
        let model = DistModel::new(
            accel,
            Fabric::new(4, Topology::Mesh2d, Link::cloud()),
            Partition::SequenceParallel,
        );
        let fixed = model.layer_cost(&cfg(), &BlockDataflow::flat(Granularity::Row(64)));
        let (df, searched) = model.layer_cost_searched(&cfg(), SpaceKind::Full, Objective::MaxUtil);
        assert!(df.la.is_fused(), "long sequences demand fusion");
        assert!(searched.compute_s <= fixed.compute_s * (1.0 + 1e-9));
        assert_eq!(
            searched.collective_s, fixed.collective_s,
            "fabric cost is dataflow-free"
        );
    }

    #[test]
    fn overlap_exposes_only_the_uncovered_collective_time() {
        let accel = Accelerator::cloud();
        let df = BlockDataflow::flat(Granularity::Row(64));
        let fabric = Fabric::new(8, Topology::Ring, Link::cloud());
        let serial = DistModel::new(accel.clone(), fabric, Partition::HeadParallel);
        let overlapped = serial.clone().with_overlap(true);
        let s = serial.layer_cost(&cfg(), &df);
        let o = overlapped.layer_cost(&cfg(), &df);
        // Serial pricing: every collective second is exposed — the PR 4
        // identity the pinned tests depend on.
        assert_eq!(s.exposed_s, s.collective_s);
        assert_eq!(s.total_s(), s.compute_s + s.collective_s);
        // Overlap pricing: busy time unchanged, critical path is the max.
        assert_eq!(o.collective_s, s.collective_s);
        assert_eq!(o.exposed_s, (o.collective_s - o.compute_s).max(0.0));
        assert!((o.total_s() - s.compute_s.max(s.collective_s)).abs() < 1e-18);
        assert!(o.total_s() <= s.total_s());
    }

    #[test]
    fn cluster_energy_charges_every_chip_plus_links() {
        let accel = Accelerator::cloud();
        let df = BlockDataflow::flat(Granularity::Row(64));
        let model = DistModel::new(
            accel,
            Fabric::new(8, Topology::FullyConnected, Link::cloud()),
            Partition::HeadParallel,
        );
        let r = model.layer_cost(&cfg(), &df);
        assert!(r.link_pj > 0.0);
        assert_eq!(r.total_pj(), 8.0 * r.compute_pj + r.link_pj);
    }
}
