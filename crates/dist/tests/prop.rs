//! Property tests for the distributed layer.
//!
//! Three families of invariants:
//!
//! 1. **Collective algebra** — costs are symmetric in participant order
//!    (a collective is a set operation), monotone in message size on
//!    every topology × algorithm pair, and monotone in chip count along
//!    powers of two: non-decreasing for ring/mesh/torus/tree (more
//!    steps), non-increasing for fully-connected under the direct
//!    schedules (more dedicated links than data). Powers of two because
//!    a prime chip count degenerates the mesh to a line and its latency
//!    term can shrink at the next composite — a real property of
//!    near-square factorization, not a model bug.
//! 2. **Closed forms and identities** — the ring all-reduce equals
//!    `2(p−1)(α + n/(pβ))` exactly for random α, β, n, p;
//!    `reduce_scatter + all_gather == all_reduce` on the ring for every
//!    algorithm; halving-doubling makes `2·log2(p)` steps at
//!    power-of-two chip counts and falls back to the ring schedule
//!    elsewhere.
//! 3. **Sharded numerics** — sequence-parallel partial attention merged
//!    with the cross-chip online-softmax fold equals single-chip
//!    streaming attention for every shard count and every tile split
//!    straddling the shard boundaries (the acceptance criterion).

use flat_dist::{sequence_parallel_attention, CollectiveAlgo, Fabric, Link, Partition, Topology};
use flat_kernels::{streaming_attention, Mask, MultiHeadInput};
use flat_workloads::AttentionConfig;
use proptest::prelude::*;

fn any_topology() -> impl Strategy<Value = Topology> {
    proptest::sample::select(Topology::all().to_vec())
}

fn any_algo() -> impl Strategy<Value = CollectiveAlgo> {
    proptest::sample::select(CollectiveAlgo::all().to_vec())
}

fn any_link() -> impl Strategy<Value = (f64, f64)> {
    // (bandwidth GB/s, latency µs) over realistic fabric ranges.
    (1.0f64..1000.0, 0.1f64..20.0)
}

fn fabric(chips: usize, topology: Topology, (gbps, us): (f64, f64)) -> Fabric {
    Fabric::new(
        chips,
        topology,
        Link {
            bytes_per_s: gbps * 1e9,
            latency_s: us * 1e-6,
            pj_per_byte: 80.0,
        },
    )
}

proptest! {
    /// Collectives over an explicit participant set are order- and
    /// duplication-insensitive: any permutation (modeled by reversal and
    /// rotation) and any duplication of the id list prices identically.
    #[test]
    fn collectives_are_symmetric_in_participant_order(
        topology in any_topology(),
        link in any_link(),
        chips in 2usize..33,
        ids in proptest::collection::vec(0usize..33, 1..12),
        bytes in 1u64..(1 << 32),
        rot in 0usize..12,
    ) {
        let f = fabric(chips, topology, link);
        let fwd = f.all_reduce_among_s(bytes, &ids);
        let mut rev = ids.clone();
        rev.reverse();
        let mut rotated = ids.clone();
        rotated.rotate_left(rot % ids.len().max(1));
        let mut doubled = ids.clone();
        doubled.extend_from_slice(&ids);
        prop_assert_eq!(fwd, f.all_reduce_among_s(bytes, &rev));
        prop_assert_eq!(fwd, f.all_reduce_among_s(bytes, &rotated));
        prop_assert_eq!(fwd, f.all_reduce_among_s(bytes, &doubled));
        prop_assert_eq!(
            f.all_gather_among_s(bytes, &ids),
            f.all_gather_among_s(bytes, &rev)
        );
        prop_assert_eq!(
            f.reduce_scatter_among_s(bytes, &ids),
            f.reduce_scatter_among_s(bytes, &rotated)
        );
    }

    /// Bigger messages never get cheaper, on any topology × algorithm
    /// pair, for all three collectives and point-to-point transfers.
    #[test]
    fn collective_cost_is_monotone_in_message_size(
        topology in any_topology(),
        algo in any_algo(),
        link in any_link(),
        chips in 1usize..33,
        bytes in 1u64..(1 << 40),
        extra in 1u64..(1 << 30),
    ) {
        let f = fabric(chips, topology, link).with_algo(algo);
        let bigger = bytes + extra;
        prop_assert!(f.all_reduce_s(bigger) >= f.all_reduce_s(bytes));
        prop_assert!(f.all_gather_s(bigger) >= f.all_gather_s(bytes));
        prop_assert!(f.reduce_scatter_s(bigger) >= f.reduce_scatter_s(bytes));
        prop_assert!(f.p2p_s(bigger, 0, chips - 1) >= f.p2p_s(bytes, 0, chips - 1));
    }

    /// Along powers of two, adding chips never makes a ring or mesh
    /// collective cheaper (more steps) and never makes a fully-connected
    /// one dearer (each phase moves n/p over a dedicated link).
    #[test]
    fn collective_cost_is_monotone_in_chip_count(
        link in any_link(),
        doubling in 1u32..6,
        bytes in 1u64..(1 << 36),
    ) {
        let (p, q) = (1usize << (doubling - 1), 1usize << doubling);
        for topology in [Topology::Ring, Topology::Mesh2d] {
            let small = fabric(p, topology, link);
            let large = fabric(q, topology, link);
            prop_assert!(
                large.all_reduce_s(bytes) >= small.all_reduce_s(bytes),
                "{topology}: {p} -> {q} chips got cheaper"
            );
            prop_assert!(large.all_gather_s(bytes) >= small.all_gather_s(bytes));
        }
        // Fully connected shrinks with scale — except the 1 -> 2 step,
        // where one chip's zero-communication baseline is unbeatable.
        if p >= 2 {
            let small = fabric(p, Topology::FullyConnected, link);
            let large = fabric(q, Topology::FullyConnected, link);
            prop_assert!(large.all_reduce_s(bytes) <= small.all_reduce_s(bytes));
            prop_assert!(large.all_gather_s(bytes) <= small.all_gather_s(bytes));
        }
    }

    /// Along powers of two, for every collective algorithm: adding chips
    /// never makes a ring, mesh, torus, or tree collective cheaper (more
    /// steps, or a longer logical chain for halving-doubling partners).
    /// On the fully-connected fabric the direct ring/bucket schedules
    /// get cheaper with scale (each phase moves n/p over a dedicated
    /// link) while halving-doubling's log-depth latency grows.
    #[test]
    fn collective_cost_is_monotone_in_chip_count_for_every_algo(
        link in any_link(),
        algo in any_algo(),
        doubling in 1u32..6,
        bytes in 1u64..(1 << 36),
    ) {
        let (p, q) = (1usize << (doubling - 1), 1usize << doubling);
        for topology in [Topology::Ring, Topology::Mesh2d, Topology::Torus2d, Topology::Tree] {
            let small = fabric(p, topology, link).with_algo(algo);
            let large = fabric(q, topology, link).with_algo(algo);
            prop_assert!(
                large.all_reduce_s(bytes) >= small.all_reduce_s(bytes),
                "{topology}/{algo}: {p} -> {q} chips got cheaper"
            );
            prop_assert!(large.all_gather_s(bytes) >= small.all_gather_s(bytes));
        }
        if p >= 2 {
            let small = fabric(p, Topology::FullyConnected, link).with_algo(algo);
            let large = fabric(q, Topology::FullyConnected, link).with_algo(algo);
            match algo {
                CollectiveAlgo::Ring | CollectiveAlgo::Bucket => {
                    prop_assert!(large.all_reduce_s(bytes) <= small.all_reduce_s(bytes));
                    prop_assert!(large.all_gather_s(bytes) <= small.all_gather_s(bytes));
                }
                CollectiveAlgo::HalvingDoubling => {
                    prop_assert!(large.all_reduce_s(bytes) >= small.all_reduce_s(bytes));
                    prop_assert!(large.all_gather_s(bytes) >= small.all_gather_s(bytes));
                }
            }
        }
    }

    /// Open chains cannot beat wraparound, wraparound cannot beat
    /// dedicated all-pairs links: at equal bytes and equal link
    /// parameters, `mesh >= torus >= fully-connected` for every
    /// algorithm and chip count — the open-chain pricing bugfix's
    /// regression guard.
    #[test]
    fn mesh_at_least_torus_at_least_fc(
        link in any_link(),
        algo in any_algo(),
        chips in 1usize..33,
        bytes in 1u64..(1 << 38),
    ) {
        let mesh = fabric(chips, Topology::Mesh2d, link).with_algo(algo);
        let torus = fabric(chips, Topology::Torus2d, link).with_algo(algo);
        let fc = fabric(chips, Topology::FullyConnected, link).with_algo(algo);
        let slack = 1e-12 * mesh.all_reduce_s(bytes).max(1.0);
        prop_assert!(mesh.all_reduce_s(bytes) >= torus.all_reduce_s(bytes) - slack);
        prop_assert!(torus.all_reduce_s(bytes) >= fc.all_reduce_s(bytes) - slack);
        prop_assert!(mesh.all_gather_s(bytes) >= torus.all_gather_s(bytes) - slack);
        prop_assert!(torus.all_gather_s(bytes) >= fc.all_gather_s(bytes) - slack);
    }

    /// On the ring, `reduce_scatter + all_gather == all_reduce` for
    /// every algorithm: the all-reduce *is* the two phases chained
    /// (bucket's shard-through shortcut only exists on 2-D fabrics).
    #[test]
    fn ring_reduce_scatter_plus_all_gather_is_all_reduce(
        link in any_link(),
        algo in any_algo(),
        chips in 1usize..65,
        bytes in 1u64..(1 << 40),
    ) {
        let f = fabric(chips, Topology::Ring, link).with_algo(algo);
        let sum = f.reduce_scatter_s(bytes) + f.all_gather_s(bytes);
        let ar = f.all_reduce_s(bytes);
        prop_assert!(
            (sum - ar).abs() <= 1e-12 * ar.max(1e-30),
            "{algo} p={chips}: rs+ag {sum} != ar {ar}"
        );
    }

    /// Halving-doubling is a step-count algorithm: with the bandwidth
    /// term suppressed (huge β, 1-byte payload), a fully-connected
    /// all-reduce costs exactly `2·log2(p)` hops of latency at
    /// power-of-two chip counts — and off powers of two it falls back to
    /// the ring schedule on every topology.
    #[test]
    fn halving_doubling_steps_and_fallback(
        topology in any_topology(),
        doubling in 1u32..8,
        us in 0.1f64..20.0,
        chips in 2usize..65,
        bytes in 1u64..(1 << 38),
        link in any_link(),
    ) {
        let p = 1usize << doubling;
        let fast = (1.0e9, us); // 1e9 GB/s: latency-only regime
        let f = fabric(p, Topology::FullyConnected, fast)
            .with_algo(CollectiveAlgo::HalvingDoubling);
        let alpha = us * 1e-6;
        let expect = 2.0 * f64::from(doubling) * alpha;
        let got = f.all_reduce_s(1);
        prop_assert!(
            (got - expect).abs() <= 1e-6 * expect,
            "p={p}: got {got}, want 2·log2(p)·α = {expect}"
        );
        prop_assume!(!chips.is_power_of_two());
        let ring_priced = fabric(chips, topology, link).all_reduce_s(bytes);
        let hd_priced = fabric(chips, topology, link)
            .with_algo(CollectiveAlgo::HalvingDoubling)
            .all_reduce_s(bytes);
        prop_assert_eq!(ring_priced, hd_priced, "{} p={}", topology, chips);
    }

    /// The ring all-reduce is exactly the closed form
    /// `2(p−1)(α + n/(pβ))` — not approximately: the implementation must
    /// *be* the textbook algorithm.
    #[test]
    fn ring_all_reduce_equals_closed_form(
        link in any_link(),
        chips in 2usize..65,
        bytes in 1u64..(1 << 40),
    ) {
        let f = fabric(chips, Topology::Ring, link);
        let (gbps, us) = link;
        let (alpha, beta) = (us * 1e-6, gbps * 1e9);
        let expect = 2.0 * (chips - 1) as f64
            * (alpha + bytes as f64 / (chips as f64 * beta));
        let got = f.all_reduce_s(bytes);
        prop_assert!(
            (got - expect).abs() <= 1e-12 * expect,
            "p={chips} n={bytes}: got {got}, want {expect}"
        );
    }

    /// Partition algebra: every strategy's shard at 1 chip needs no
    /// collectives, shard compute shrinks weakly monotonically in chip
    /// count (logit elements, the N² proxy), and collective payloads are
    /// independent of chip count (the tensors exchanged are determined
    /// by the layer, not the cluster).
    #[test]
    fn partitions_shrink_shards_and_fix_payloads(
        heads in 1u64..33,
        seq in 64u64..8192,
        batch in 1u64..9,
        p_small in 2usize..16,
        extra in 1usize..16,
    ) {
        let cfg = AttentionConfig::cross_attention(batch, heads, seq, seq, heads * 64, 4096);
        let p_large = p_small + extra;
        for part in Partition::all() {
            prop_assert!(part.collectives(&cfg, 1).is_empty());
            let small = part.shard_config(&cfg, p_small);
            let large = part.shard_config(&cfg, p_large);
            prop_assert!(
                large.logit_elements() <= small.logit_elements(),
                "{part}: more chips grew the shard"
            );
            let payload = |p: usize| -> u64 {
                part.collectives(&cfg, p).iter().map(|c| c.bytes).sum()
            };
            prop_assert_eq!(payload(p_small), payload(p_large), "{}", part);
        }
    }

    /// The acceptance criterion: sequence-parallel sharded attention —
    /// per-shard online-softmax partials merged across chips — is
    /// numerically the single-chip streaming kernel, for any shard
    /// count (including more shards than KV rows) and any streaming tile
    /// split straddling the shard boundaries.
    #[test]
    fn sequence_parallel_matches_streaming_attention(
        batch in 1usize..3,
        heads in 1usize..4,
        seq_q in 1usize..12,
        seq_kv in 1usize..48,
        dk in 1usize..12,
        chips in 1usize..10,
        rows_per_tile in 1usize..8,
        kv_tile in 1usize..50,
        seed in any::<u64>(),
    ) {
        let input = MultiHeadInput::random(batch, heads, seq_q, seq_kv, dk, seed);
        let reference = streaming_attention(&input, rows_per_tile, kv_tile, Mask::None);
        let sharded = sequence_parallel_attention(&input, chips);
        prop_assert_eq!(reference.len(), sharded.len());
        for (g, (r, s)) in reference.iter().zip(&sharded).enumerate() {
            let diff = r.max_abs_diff(s);
            prop_assert!(
                diff < 2e-4,
                "group {g}: diff {diff} at chips {chips}, kv {seq_kv}"
            );
        }
    }
}
